"""Executor-backend correctness: identical bytes, clean failures.

The parallel backends must be *invisible* in the output: serial,
thread and process runs of the same config produce byte-identical
containers, and every backend decodes the golden fixtures to exactly
the arrays the fixtures pin.  On top of that, the process backend must
survive hostile conditions — worker crashes surface as a clean
:class:`~repro.compressor.executor.ExecutorError` (and the shared
registry replaces the poisoned pool), and both ``fork`` and ``spawn``
start methods yield the same bytes.
"""

import os
import threading

import numpy as np
import pytest

from repro.compressor import (
    CompressionConfig,
    ExecutorError,
    ProcessExecutor,
    SZCompressor,
    TiledCompressor,
)
from repro.compressor import executor as executor_mod
from repro.compressor import stages as stages_mod
from repro.compressor.executor import (
    SerialExecutor,
    ThreadExecutor,
    get_executor,
    make_executor,
    resolve_executor,
)
from repro.compressor.stages import HuffmanEntropyStage
from tests.proptest import draw_case

DATA_DIR = os.path.join(os.path.dirname(os.path.dirname(__file__)), "data")

#: proptest seeds exercised per backend (tiny arrays; every seed covers
#: a different dtype/shape/mode/predictor/chunk/tile combination)
CORPUS_SEEDS = range(0, 12)

BACKENDS = ("serial", "thread", "process")


def _compress_case(case, backend):
    if case.config.tile_shape is not None:
        return (
            TiledCompressor(workers=case.workers, backend=backend)
            .compress(case.data, case.config)
            .blob
        )
    return (
        SZCompressor(workers=case.workers, backend=backend)
        .compress(case.data, case.config)
        .blob
    )


class TestByteIdenticalOutputs:
    def test_property_corpus_identical_across_backends(self):
        for seed in CORPUS_SEEDS:
            case = draw_case(seed)
            serial = _compress_case(case, "serial")
            for backend in ("thread", "process"):
                assert _compress_case(case, backend) == serial, (
                    f"{backend} blob differs from serial "
                    f"[{case.describe()}]"
                )

    @pytest.mark.parametrize("backend", BACKENDS)
    @pytest.mark.parametrize(
        "name", ["seed_v3_zstd", "pr2_v4_tiled_zstd", "pr3_v5_adaptive"]
    )
    def test_golden_fixtures_decode_identically(self, backend, name):
        with open(os.path.join(DATA_DIR, f"{name}.rqsz"), "rb") as fh:
            blob = fh.read()
        expected = np.load(
            os.path.join(DATA_DIR, f"{name}_expected.npy")
        )
        decoded = TiledCompressor(workers=3, backend=backend).decompress(
            blob
        )
        np.testing.assert_array_equal(decoded, expected)

    def test_chunked_decode_identical_across_backends(self):
        rng = np.random.default_rng(7)
        data = np.cumsum(rng.standard_normal((40, 500)), axis=-1)
        config = CompressionConfig(error_bound=1e-3, chunk_size=2048)
        blob = SZCompressor().compress(data, config).blob
        base = SZCompressor(workers=1).decompress(blob)
        for backend in ("thread", "process"):
            out = SZCompressor(workers=3, backend=backend).decompress(
                blob
            )
            np.testing.assert_array_equal(out, base)


class TestStartMethods:
    @pytest.mark.parametrize("start_method", ["fork", "spawn"])
    def test_chunked_roundtrip_matches_serial(self, start_method):
        rng = np.random.default_rng(11)
        data = np.cumsum(rng.standard_normal((30, 400)), axis=-1)
        config = CompressionConfig(error_bound=1e-3, chunk_size=1024)
        serial = SZCompressor().compress(data, config)

        proc = ProcessExecutor(2, start_method=start_method)
        try:
            sz = SZCompressor(
                entropy=HuffmanEntropyStage(workers=2, executor=proc)
            )
            result = sz.compress(data, config)
            assert result.blob == serial.blob
            np.testing.assert_array_equal(
                sz.decompress(result.blob), SZCompressor().decompress(
                    serial.blob
                )
            )
        finally:
            proc.close()

    @pytest.mark.parametrize("start_method", ["fork", "spawn"])
    def test_raw_batch_runs_under_both_methods(self, start_method):
        proc = ProcessExecutor(2, start_method=start_method)
        try:
            codes = np.arange(4096, dtype=np.int64) % 17
            buffer = proc.wrap_input(codes)
            try:
                results = proc.run_batch(
                    stages_mod._encode_chunk_task,
                    [(0, 2048, None), (2048, 4096, None)],
                    input=buffer,
                )
            finally:
                buffer.release()
            assert len(results) == 2
            for payload, huffman_len in results:
                assert isinstance(payload, bytes)
                assert huffman_len == len(payload)
        finally:
            proc.close()


def _crash_task(item, inp, out):
    """Hard-kill the worker (bypasses exception handling entirely)."""
    os._exit(13)


def _boom_task(item, inp, out):
    raise ValueError(f"boom on {item}")


class TestFailureModes:
    def test_worker_crash_surfaces_as_executor_error(self):
        # fork: the task function lives in this (non-importable) test
        # module, which fork children inherit by memory
        proc = ProcessExecutor(2, start_method="fork")
        try:
            with pytest.raises(ExecutorError, match="worker process died"):
                proc.run_batch(_crash_task, [1, 2, 3])
            assert proc.broken
            # a poisoned executor refuses further work with the same
            # clean error instead of hanging or leaking futures
            with pytest.raises(ExecutorError):
                proc.run_batch(_crash_task, [1])
        finally:
            proc.close()

    def test_registry_replaces_broken_executor(self):
        first = get_executor("process", 2, start_method="fork")
        try:
            with pytest.raises(ExecutorError):
                first.run_batch(_crash_task, [1])
            replacement = get_executor("process", 2, start_method="fork")
            assert replacement is not first
            assert not replacement.broken
        finally:
            first.close()

    def test_task_exceptions_propagate_as_themselves(self):
        proc = ProcessExecutor(2, start_method="fork")
        try:
            with pytest.raises(ValueError, match="boom on 2"):
                proc.run_batch(_boom_task, [2])
            # an ordinary task exception must not poison the pool
            assert not proc.broken
            assert proc.run_batch(_echo_task, [1]) == [1]
        finally:
            proc.close()

    def test_corrupt_tile_payload_raises_value_error(self):
        data = np.ones((8, 8), dtype=np.float32)
        blob = bytearray(
            TiledCompressor()
            .compress(
                data, CompressionConfig(error_bound=0.1, tile_shape=(4, 4))
            )
            .blob
        )
        blob[len(blob) // 2] ^= 0xFF
        tc = TiledCompressor(workers=2, backend="process")
        with pytest.raises(ValueError):
            tc.decompress(bytes(blob))


def _echo_task(item, inp, out):
    return item


class TestParallelRegionHammer:
    def test_concurrent_region_decodes_on_one_reader(self, tmp_path):
        rng = np.random.default_rng(3)
        data = np.cumsum(
            rng.standard_normal((64, 64)), axis=0
        ).astype(np.float32)
        config = CompressionConfig(error_bound=1e-2, tile_shape=(16, 16))
        path = str(tmp_path / "hammer.rqsz")
        TiledCompressor().compress(data, config, out=path)
        tc = TiledCompressor(workers=2, backend="process")
        expected = tc.decompress(path)

        regions = [
            (slice(0, 64), slice(0, 64)),
            (slice(5, 40), slice(11, 60)),
            (slice(16, 17), slice(0, 64)),
            (slice(30, 64), slice(30, 64)),
        ]
        errors: list = []

        def worker(idx: int) -> None:
            try:
                for _ in range(3):
                    region = regions[idx % len(regions)]
                    out = tc.decompress_region(path, region)
                    np.testing.assert_array_equal(
                        out, expected[region]
                    )
            except Exception as exc:  # pragma: no cover - failure path
                errors.append(exc)

        threads = [
            threading.Thread(target=worker, args=(i,)) for i in range(8)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert not errors
        assert tc.tiles_decoded >= 8


class TestNestedParallelism:
    def test_nested_thread_batches_run_inline_without_deadlock(self):
        # A custom thread-backed codec inside a thread-backed tiled
        # decode used to deadlock: outer tile tasks held every pool
        # thread while their inner chunk batches queued behind them.
        # Nested batches must run inline instead.
        rng = np.random.default_rng(1)
        data = np.cumsum(rng.standard_normal((16, 64)), axis=-1)
        config = CompressionConfig(
            error_bound=1e-2, chunk_size=64, tile_shape=(8, 32)
        )
        tc = TiledCompressor(
            workers=4,
            backend="thread",
            codec=SZCompressor(workers=4, backend="thread"),
        )
        blob = tc.compress(data, config).blob

        done: list = []

        def run() -> None:
            done.append(tc.decompress_region(blob, (slice(0, 16),)))

        thread = threading.Thread(target=run, daemon=True)
        thread.start()
        thread.join(timeout=60)
        assert done, "nested thread decode deadlocked"
        np.testing.assert_array_equal(
            done[0], TiledCompressor().decompress(blob)
        )

    def test_per_tile_configs_never_carry_the_parallel_hint(self):
        # Per-tile configs execute inside executor tasks; shipping the
        # parallel_backend hint along would make every worker spin up
        # its own nested executor (process workers forking pools).
        rng = np.random.default_rng(2)
        data = np.cumsum(rng.standard_normal((32, 32)), axis=0)
        hinted = CompressionConfig(
            error_bound=1e-2,
            chunk_size=128,
            tile_shape=(16, 16),
            parallel_backend="process",
        )
        plain = CompressionConfig(
            error_bound=1e-2, chunk_size=128, tile_shape=(16, 16)
        )
        tc = TiledCompressor(workers=2)
        assert (
            tc.compress(data, hinted).blob == tc.compress(data, plain).blob
        )
        adaptive = CompressionConfig(
            error_bound=0.5,
            tile_shape=(16, 16),
            adaptive=True,
            parallel_backend="process",
        )
        result = TiledCompressor(workers=2, backend="process").compress(
            data, adaptive
        )
        base = CompressionConfig(error_bound=0.5)
        for i in range(result.plan.n_tiles):
            cfg = result.plan.config_for(
                CompressionConfig(
                    error_bound=0.5, parallel_backend="process"
                ),
                i,
            )
            assert cfg.parallel_backend is None
        assert base.parallel_backend is None


class TestThreadEncodeCap:
    def test_thread_encode_caps_and_warns_once(self):
        data = np.cumsum(
            np.random.default_rng(0).standard_normal(6000)
        )
        config = CompressionConfig(error_bound=1e-3, chunk_size=512)
        stages_mod._gil_cap_warned = False
        try:
            with pytest.warns(RuntimeWarning, match="cannot release the GIL"):
                threaded = SZCompressor(
                    workers=4, backend="thread"
                ).compress(data, config)
            serial = SZCompressor().compress(data, config)
            assert threaded.blob == serial.blob
        finally:
            stages_mod._gil_cap_warned = False

    def test_cap_helper_passes_through_gil_free_stages(self):
        thread = ThreadExecutor(4)
        try:
            assert (
                stages_mod.gil_capped_encode_executor(thread, True)
                is thread
            )
            capped = stages_mod.gil_capped_encode_executor(thread, False)
            assert capped.name == "serial"
        finally:
            thread.close()

    def test_process_backend_is_never_capped(self):
        proc = ProcessExecutor(2)
        try:
            assert (
                stages_mod.gil_capped_encode_executor(proc, False) is proc
            )
        finally:
            proc.close()


class TestExecutorPlumbing:
    def test_make_executor_names_and_unknown(self):
        assert isinstance(make_executor("serial"), SerialExecutor)
        thread = make_executor("thread", 2)
        assert isinstance(thread, ThreadExecutor)
        thread.close()
        assert isinstance(make_executor(None, 2), ThreadExecutor)
        with pytest.raises(ValueError, match="unknown parallel backend"):
            make_executor("gpu", 2)

    def test_resolve_executor_serial_shortcuts(self):
        assert resolve_executor("process", 1).name == "serial"
        assert resolve_executor(None, None).name == "serial"
        explicit = SerialExecutor()
        assert resolve_executor("process", 8, explicit) is explicit

    def test_explicit_backend_without_workers_gets_default_width(self):
        # an explicitly requested parallel backend must not silently
        # collapse to serial just because workers was left unset: it
        # resolves to the machine's default width (which may be 1 only
        # on a single-core host)
        width = executor_mod.default_workers()
        assert width >= 1
        made = make_executor("process")
        assert made.workers == width
        made.close()
        resolved = resolve_executor("process", None)
        assert resolved.name == ("process" if width > 1 else "serial")

    def test_get_executor_is_shared(self):
        a = get_executor("thread", 3)
        b = get_executor("thread", 3)
        assert a is b

    def test_config_rejects_unknown_backend(self):
        with pytest.raises(ValueError, match="unknown parallel backend"):
            CompressionConfig(parallel_backend="cluster")
        cfg = CompressionConfig(parallel_backend="process")
        assert cfg.parallel_backend == "process"

    def test_parallel_backend_never_reaches_the_header(self):
        data = np.linspace(0, 1, 256).reshape(16, 16)
        plain = SZCompressor().compress(
            data, CompressionConfig(error_bound=1e-3)
        )
        hinted = SZCompressor().compress(
            data,
            CompressionConfig(
                error_bound=1e-3, parallel_backend="process"
            ),
        )
        assert plain.blob == hinted.blob

    def test_custom_codec_rejected_on_process_backend(self):
        tc = TiledCompressor(
            workers=2, codec=SZCompressor(), backend="process"
        )
        data = np.zeros((8, 8))
        with pytest.raises(ValueError, match="custom codec"):
            tc.compress(
                data, CompressionConfig(error_bound=0.1, tile_shape=(4, 4))
            )

    def test_buffers_roundtrip_serial_and_process(self):
        for ex in (SerialExecutor(), ProcessExecutor(2)):
            try:
                wrapped = ex.wrap_input(np.arange(10, dtype=np.int64))
                assert wrapped.array.nbytes == 80
                out = ex.output_buffer(16)
                assert out.array.nbytes == 16
                wrapped.release()
                out.release()
                assert wrapped.array is None
            finally:
                ex.close()

    def test_empty_batch_returns_empty(self):
        proc = ProcessExecutor(2)
        try:
            assert proc.run_batch(_echo_task, []) == []
        finally:
            proc.close()
