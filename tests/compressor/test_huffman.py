"""Unit + property tests for the Huffman codec."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.compressor.encoders.huffman import (
    HuffmanCode,
    HuffmanEncoder,
    huffman_code_lengths,
)
from repro.utils.stats import entropy_bits, normalized_histogram


class TestCodeLengths:
    def test_two_symbols(self):
        lengths = huffman_code_lengths(np.array([5, 5]))
        np.testing.assert_array_equal(lengths, [1, 1])

    def test_singleton_gets_one_bit(self):
        lengths = huffman_code_lengths(np.array([7]))
        assert lengths[0] == 1

    def test_zero_count_symbol_gets_zero_length(self):
        lengths = huffman_code_lengths(np.array([4, 0, 4]))
        assert lengths[1] == 0
        assert lengths[0] == lengths[2] == 1

    def test_skewed_distribution(self):
        # frequencies 8,4,2,1,1 -> optimal lengths 1,2,3,4,4
        lengths = huffman_code_lengths(np.array([8, 4, 2, 1, 1]))
        assert sorted(lengths.tolist()) == [1, 2, 3, 4, 4]

    def test_all_zero_raises(self):
        with pytest.raises(ValueError):
            huffman_code_lengths(np.array([0, 0]))

    def test_negative_raises(self):
        with pytest.raises(ValueError):
            huffman_code_lengths(np.array([-1, 2]))

    @given(st.lists(st.integers(1, 10_000), min_size=2, max_size=128))
    @settings(max_examples=50)
    def test_kraft_equality(self, counts):
        lengths = huffman_code_lengths(np.array(counts))
        kraft = np.sum(2.0 ** (-lengths[lengths > 0]))
        assert kraft == pytest.approx(1.0)

    @given(st.lists(st.integers(1, 10_000), min_size=2, max_size=128))
    @settings(max_examples=50)
    def test_average_length_within_entropy_plus_one(self, counts):
        counts_arr = np.array(counts)
        lengths = huffman_code_lengths(counts_arr)
        p = counts_arr / counts_arr.sum()
        avg = float(np.sum(p * lengths))
        h = entropy_bits(p)
        assert h - 1e-9 <= avg <= h + 1.0 + 1e-9


class TestHuffmanCodePrefixProperty:
    @given(st.lists(st.integers(1, 1000), min_size=2, max_size=64))
    @settings(max_examples=30)
    def test_codes_are_prefix_free(self, counts):
        symbols = np.arange(len(counts))
        code = HuffmanCode.from_histogram(symbols, np.array(counts))
        entries = [
            (int(code.codes[i]), int(code.lengths[i]))
            for i in range(len(counts))
            if code.lengths[i] > 0
        ]
        as_strings = [format(c, f"0{ln}b") for c, ln in entries]
        for i, a in enumerate(as_strings):
            for j, b in enumerate(as_strings):
                if i != j:
                    assert not b.startswith(a)


class TestEncoderRoundtrip:
    def test_simple_roundtrip(self):
        enc = HuffmanEncoder()
        stream = np.array([0, 0, 1, -1, 0, 2, 0, 0])
        out = enc.decode(enc.encode(stream))
        np.testing.assert_array_equal(out, stream)

    def test_empty_stream(self):
        enc = HuffmanEncoder()
        out = enc.decode(enc.encode(np.array([], dtype=np.int64)))
        assert out.size == 0

    def test_single_symbol_stream(self):
        enc = HuffmanEncoder()
        stream = np.zeros(1000, dtype=np.int64)
        out = enc.decode(enc.encode(stream))
        np.testing.assert_array_equal(out, stream)

    def test_negative_symbols(self):
        enc = HuffmanEncoder()
        stream = np.array([-32768, 32767, -1, 0, 1] * 10)
        np.testing.assert_array_equal(
            enc.decode(enc.encode(stream)), stream
        )

    def test_large_symbol_values(self):
        enc = HuffmanEncoder()
        stream = np.array([2**40, -(2**40), 0, 0, 2**40])
        np.testing.assert_array_equal(
            enc.decode(enc.encode(stream)), stream
        )

    def test_wide_alphabet_with_rare_symbols(self):
        rng = np.random.default_rng(0)
        common = np.zeros(5000, dtype=np.int64)
        rare = rng.integers(-500, 500, size=200)
        stream = np.concatenate([common, rare])
        rng.shuffle(stream)
        enc = HuffmanEncoder()
        np.testing.assert_array_equal(
            enc.decode(enc.encode(stream)), stream
        )

    @given(
        st.lists(st.integers(-100, 100), min_size=1, max_size=500),
    )
    @settings(max_examples=50, deadline=None)
    def test_roundtrip_random(self, values):
        enc = HuffmanEncoder()
        stream = np.array(values, dtype=np.int64)
        np.testing.assert_array_equal(
            enc.decode(enc.encode(stream)), stream
        )

    def test_geometric_distribution_roundtrip(self):
        # Mirrors real quantization-code statistics (zero-dominated).
        rng = np.random.default_rng(1)
        stream = (rng.geometric(0.7, size=20_000) - 1) * rng.choice(
            [-1, 1], size=20_000
        )
        enc = HuffmanEncoder()
        np.testing.assert_array_equal(
            enc.decode(enc.encode(stream)), stream
        )


class TestEncodedSize:
    def test_size_only_matches_real_payload_bits(self):
        rng = np.random.default_rng(2)
        stream = rng.integers(-5, 6, size=4000)
        enc = HuffmanEncoder()
        bits = enc.encoded_size_bits(stream)
        # real payload is the container minus header; check consistency
        code = HuffmanCode.from_stream(stream)
        dense = np.searchsorted(code.symbols, stream)
        assert bits == int(code.lengths[dense].sum())

    def test_compression_beats_raw_for_skewed_data(self):
        stream = np.zeros(10_000, dtype=np.int64)
        stream[::100] = 1
        enc = HuffmanEncoder()
        bits = enc.encoded_size_bits(stream)
        assert bits < stream.size * 2  # far below 64-bit raw

    def test_size_near_entropy(self):
        rng = np.random.default_rng(3)
        stream = rng.integers(0, 16, size=50_000)
        _, probs = normalized_histogram(stream)
        h = entropy_bits(probs)
        enc = HuffmanEncoder()
        bits_per_symbol = enc.encoded_size_bits(stream) / stream.size
        assert h <= bits_per_symbol <= h + 1.0
