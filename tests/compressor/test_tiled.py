"""Tiled containers: out-of-core streaming and region-of-interest decode."""

import io

import numpy as np
import pytest

from repro.compressor import (
    CompressionConfig,
    ErrorBoundMode,
    SZCompressor,
    TiledCompressor,
)
from repro.compressor.tiled import (
    intersect_extent,
    iter_tiles,
    normalize_region,
    tile_grid,
)
from tests.conftest import assert_error_bounded, smooth_field


class TestGeometry:
    def test_tile_grid_ceiling(self):
        assert tile_grid((10, 4), (4, 4)) == (3, 1)

    def test_tile_grid_rank_mismatch(self):
        with pytest.raises(ValueError):
            tile_grid((10, 4), (4,))

    def test_iter_tiles_covers_every_point_once(self):
        shape, tile = (7, 5, 3), (3, 2, 3)
        counts = np.zeros(shape, dtype=int)
        for start, stop in iter_tiles(shape, tile):
            counts[tuple(slice(a, b) for a, b in zip(start, stop))] += 1
        assert np.all(counts == 1)

    def test_normalize_region_defaults_and_negative_ints(self):
        shape = (10, 8)
        assert normalize_region((slice(None),), shape) == (
            slice(0, 10),
            slice(0, 8),
        )
        # negative *integers* index from the end, numpy style
        assert normalize_region((slice(7, None), -1), shape) == (
            slice(7, 10),
            slice(7, 8),
        )

    def test_normalize_region_rejects_steps_and_rank(self):
        with pytest.raises(ValueError):
            normalize_region((slice(0, 4, 2),), (10,))
        with pytest.raises(ValueError):
            normalize_region((slice(None),) * 3, (10,))
        with pytest.raises(IndexError):
            normalize_region((99,), (10,))

    @pytest.mark.parametrize(
        "bad",
        [
            slice(-3, None),
            slice(None, -1),
            slice(-5, -2),
            slice(None, None, 2),
            slice(None, None, -1),
            slice(8, 0, -1),
            slice(0.5, 3),
            "0:3",
        ],
    )
    def test_normalize_region_rejects_invalid_slices(self, bad):
        """Negative endpoints, steps and non-int slices raise cleanly."""
        with pytest.raises(ValueError):
            normalize_region((bad,), (10,))

    def test_decompress_region_rejects_invalid_slices(self):
        # regression: the decode entry points themselves must raise a
        # clean ValueError instead of mis-decoding odd regions
        data = smooth_field((16, 16))
        cfg = CompressionConfig(error_bound=1e-3, tile_shape=(8, 8))
        tc = TiledCompressor()
        result = tc.compress(data, cfg)
        for region in (
            (slice(-4, None), slice(None)),
            (slice(None), slice(0, 16, 2)),
            (slice(None, None, -1),),
        ):
            with pytest.raises(ValueError):
                tc.decompress_region(result.blob, region)
        # flat blobs go through the same validation
        flat = SZCompressor().compress(data, CompressionConfig(error_bound=1e-3))
        with pytest.raises(ValueError):
            tc.decompress_region(flat.blob, (slice(-4, None),))

    def test_intersect_extent(self):
        region = (slice(2, 6),)
        assert intersect_extent((0,), (4,), region) == (slice(2, 4),)
        assert intersect_extent((6,), (9,), region) is None


class TestRoundtrip:
    @pytest.mark.parametrize("workers", [None, 3])
    def test_full_roundtrip(self, workers):
        data = smooth_field((30, 41))
        cfg = CompressionConfig(error_bound=1e-3, tile_shape=(16, 16))
        tc = TiledCompressor(workers=workers)
        result = tc.compress(data, cfg)
        assert result.n_tiles == 6
        assert result.blob[4] == 4  # tiled v4 container
        recon = tc.decompress(result.blob)
        assert recon.dtype == data.dtype
        assert_error_bounded(data, recon, 1e-3)

    def test_parallel_encode_is_deterministic(self):
        data = smooth_field((40, 40))
        cfg = CompressionConfig(error_bound=1e-3, tile_shape=(13, 13))
        serial = TiledCompressor().compress(data, cfg)
        parallel = TiledCompressor(workers=4).compress(data, cfg)
        assert serial.blob == parallel.blob

    def test_result_accounting(self):
        data = smooth_field((30, 30))
        cfg = CompressionConfig(error_bound=1e-3, tile_shape=(16, 16))
        result = TiledCompressor().compress(data, cfg)
        assert result.compressed_bytes == len(result.blob)
        assert result.original_bytes == data.nbytes
        assert sum(t.size for t in result.tiles) < result.compressed_bytes
        assert result.ratio > 1.0

    def test_default_tile_shape_is_whole_array(self):
        data = smooth_field((20, 20))
        result = TiledCompressor().compress(
            data, CompressionConfig(error_bound=1e-3)
        )
        assert result.n_tiles == 1
        assert result.tile_shape == (20, 20)

    def test_rel_mode_uses_global_range(self):
        # a gradient along axis 0 makes per-tile ranges much smaller
        # than the global one; the bound must follow the global range
        data = np.linspace(0, 100, 64 * 16).reshape(64, 16)
        eb_rel = 1e-3
        cfg = CompressionConfig(
            mode=ErrorBoundMode.REL, error_bound=eb_rel, tile_shape=(8, 8)
        )
        result = TiledCompressor().compress(data, cfg)
        recon = TiledCompressor().decompress(result.blob)
        vrange = float(data.max() - data.min())
        assert_error_bounded(data, recon, eb_rel * vrange)
        # every tile must carry the bound derived from the GLOBAL range,
        # not from its own (much smaller) local range
        from repro.compressor.container import TiledReader

        with TiledReader(result.blob) as reader:
            assert reader.header["value_range"] == [0.0, 100.0]
            for record in reader.tiles:
                header, _ = SZCompressor._disassemble(
                    reader.read_tile(record)
                )
                assert header["abs_eb"] == pytest.approx(eb_rel * vrange)

    def test_rel_mode_constant_field_exact(self):
        data = np.full((20, 12), 7.25)
        cfg = CompressionConfig(
            mode=ErrorBoundMode.REL, error_bound=1e-3, tile_shape=(8, 8)
        )
        result = TiledCompressor().compress(data, cfg)
        np.testing.assert_array_equal(
            TiledCompressor().decompress(result.blob), data
        )

    def test_pw_rel_mode(self):
        data = smooth_field((24, 24)).astype(np.float64) + 2.0
        cfg = CompressionConfig(
            mode=ErrorBoundMode.PW_REL, error_bound=1e-3, tile_shape=(10, 10)
        )
        result = TiledCompressor().compress(data, cfg)
        recon = TiledCompressor().decompress(result.blob)
        rel = np.abs(recon.astype(np.float64) / data - 1.0)
        assert np.max(rel) <= 1e-3 * (1 + 1e-4)

    def test_empty_array(self):
        data = np.zeros((0, 4), dtype=np.float32)
        result = TiledCompressor().compress(
            data, CompressionConfig(tile_shape=(2, 2))
        )
        assert result.n_tiles == 0
        out = TiledCompressor().decompress(result.blob)
        assert out.shape == (0, 4) and out.dtype == np.float32

    def test_scalar_rejected(self):
        with pytest.raises(ValueError):
            TiledCompressor().compress(
                np.float64(3.0), CompressionConfig()
            )

    def test_invalid_workers_rejected(self):
        with pytest.raises(ValueError):
            TiledCompressor(workers=0)


class TestRegionDecodeProperty:
    """Property-style sweep: random tile shapes, dtypes, modes and
    hyperslabs must always decode to exactly the full reconstruction's
    slice, touching only the intersecting tiles."""

    @pytest.mark.parametrize("seed", range(8))
    def test_random_regions_match_full_decode(self, seed):
        rng = np.random.default_rng(seed)
        ndim = int(rng.integers(1, 4))
        shape = tuple(int(rng.integers(4, 28)) for _ in range(ndim))
        tile_shape = tuple(int(rng.integers(2, 12)) for _ in range(ndim))
        dtype = rng.choice([np.float32, np.float64])
        mode = rng.choice(list(ErrorBoundMode))
        data = (smooth_field(shape, seed=seed) + 2.0).astype(dtype)
        cfg = CompressionConfig(
            mode=mode,
            error_bound=1e-3,
            tile_shape=tile_shape,
            chunk_size=int(rng.integers(200, 2000))
            if rng.random() < 0.5
            else None,
        )
        tc = TiledCompressor()
        result = tc.compress(data, cfg)
        full = tc.decompress(result.blob)
        for _ in range(4):
            region = tuple(
                slice(lo, int(rng.integers(lo, n + 1)))
                for n, lo in (
                    (n, int(rng.integers(0, n))) for n in shape
                )
            )
            roi = tc.decompress_region(result.blob, region)
            np.testing.assert_array_equal(roi, full[region])
            n_hit = sum(
                intersect_extent(t.start, t.stop, normalize_region(region, shape))
                is not None
                for t in result.tiles
            )
            assert tc.last_tiles_decoded == n_hit

    def test_edge_tile_region(self):
        # region hugging the clipped edge tiles
        data = smooth_field((21, 19))
        cfg = CompressionConfig(error_bound=1e-3, tile_shape=(8, 8))
        tc = TiledCompressor()
        result = tc.compress(data, cfg)
        full = tc.decompress(result.blob)
        roi = tc.decompress_region(result.blob, (slice(16, 21), slice(16, 19)))
        np.testing.assert_array_equal(roi, full[16:21, 16:19])
        assert tc.last_tiles_decoded == 1

    def test_empty_intersection(self):
        data = smooth_field((16, 16))
        cfg = CompressionConfig(error_bound=1e-3, tile_shape=(8, 8))
        tc = TiledCompressor()
        result = tc.compress(data, cfg)
        roi = tc.decompress_region(result.blob, (slice(5, 5), slice(0, 16)))
        assert roi.shape == (0, 16)
        assert tc.last_tiles_decoded == 0

    def test_single_tile_region_decodes_one_tile(self):
        data = smooth_field((32, 32))
        cfg = CompressionConfig(error_bound=1e-3, tile_shape=(8, 8))
        tc = TiledCompressor()
        result = tc.compress(data, cfg)
        assert result.n_tiles == 16
        tc.decompress_region(result.blob, (slice(9, 15), slice(17, 23)))
        assert tc.last_tiles_decoded == 1
        assert tc.tiles_decoded == 1  # cumulative counter

    def test_int_indices_keep_dimensionality(self):
        data = smooth_field((12, 12))
        cfg = CompressionConfig(error_bound=1e-3, tile_shape=(6, 6))
        tc = TiledCompressor()
        result = tc.compress(data, cfg)
        roi = tc.decompress_region(result.blob, (3, slice(None)))
        assert roi.shape == (1, 12)


class TestOutOfCoreStreaming:
    def test_memmap_to_file_roundtrip(self, tmp_path):
        data = smooth_field((40, 30)).astype(np.float64)
        src = tmp_path / "field.npy"
        np.save(src, data)
        mm = np.load(src, mmap_mode="r")
        out = str(tmp_path / "field.rqsz")
        cfg = CompressionConfig(error_bound=1e-3, tile_shape=(16, 16))
        result = TiledCompressor(workers=2).compress(mm, cfg, out=out)
        assert result.blob is None  # streamed, not materialized
        import os

        assert os.path.getsize(out) == result.compressed_bytes
        tc = TiledCompressor()
        assert_error_bounded(data, tc.decompress(out), 1e-3)
        roi = tc.decompress_region(out, (slice(10, 20), slice(5, 9)))
        np.testing.assert_array_equal(
            roi, tc.decompress(out)[10:20, 5:9]
        )

    def test_file_object_sources(self, tmp_path):
        data = smooth_field((20, 20))
        cfg = CompressionConfig(error_bound=1e-3, tile_shape=(8, 8))
        sink = io.BytesIO()
        TiledCompressor().compress(data, cfg, out=sink)
        sink.seek(0)
        recon = TiledCompressor().decompress(sink)
        assert_error_bounded(data, recon, 1e-3)

    def test_parallel_decode_from_file_is_race_free(self, tmp_path):
        # regression: concurrent tile decodes share one file handle;
        # the seek+read pair must be atomic or threads corrupt each
        # other's reads (failed ~70% of the time before the lock)
        data = smooth_field((64, 64, 64)).astype(np.float64)
        cfg = CompressionConfig(error_bound=1e-3, tile_shape=(8, 8, 8))
        out = str(tmp_path / "many_tiles.rqsz")
        TiledCompressor(workers=4).compress(data, cfg, out=out)
        tc = TiledCompressor(workers=8)
        for _ in range(5):
            assert_error_bounded(data, tc.decompress(out), 1e-3)

    def test_writer_records_true_offsets_at_nonzero_start(self, tmp_path):
        # a sink positioned past 0 (e.g. appending) must record TOC
        # offsets that seek to the true file positions, and report the
        # container's size rather than the sink's end offset
        data = smooth_field((16, 16))
        cfg = CompressionConfig(error_bound=1e-3, tile_shape=(8, 8))
        plain = TiledCompressor().compress(data, cfg)
        path = tmp_path / "offset.rqsz"
        prefix = b"#" * 37
        with open(path, "wb") as fh:
            fh.write(prefix)
            result = TiledCompressor().compress(data, cfg, out=fh)
        assert result.compressed_bytes == len(plain.blob)
        with open(path, "rb") as fh:
            raw = fh.read()
        for record, plain_record in zip(result.tiles, plain.tiles):
            assert record.offset == plain_record.offset + len(prefix)
            assert (
                raw[record.offset : record.offset + record.size]
                == plain.blob[
                    plain_record.offset : plain_record.offset
                    + plain_record.size
                ]
            )

    def test_streamed_and_in_memory_bytes_identical(self, tmp_path):
        data = smooth_field((25, 25))
        cfg = CompressionConfig(error_bound=1e-3, tile_shape=(9, 9))
        in_memory = TiledCompressor().compress(data, cfg).blob
        out = str(tmp_path / "x.rqsz")
        TiledCompressor().compress(data, cfg, out=out)
        with open(out, "rb") as fh:
            assert fh.read() == in_memory
