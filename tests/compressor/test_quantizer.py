"""Unit + property tests for the linear-scaling quantizer."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.compressor.quantizer import LinearQuantizer


class TestConstruction:
    def test_bin_width(self):
        assert LinearQuantizer(0.5).bin_width == 1.0

    def test_nonpositive_bound_raises(self):
        with pytest.raises(ValueError):
            LinearQuantizer(0.0)

    def test_small_radius_raises(self):
        with pytest.raises(ValueError):
            LinearQuantizer(1.0, radius=1)


class TestQuantize:
    def test_zero_error_gets_zero_code(self):
        q = LinearQuantizer(0.1)
        block = q.quantize(np.zeros(4), np.zeros(4))
        np.testing.assert_array_equal(block.codes, 0)
        assert block.n_outliers == 0

    def test_error_within_bound_after_dequant(self):
        q = LinearQuantizer(0.05)
        errors = np.linspace(-3, 3, 101)
        block = q.quantize(errors, errors)
        recon = q.dequantize(block.codes)
        ok = ~block.outlier_mask
        assert np.all(np.abs(errors[ok] - recon[ok]) <= 0.05 + 1e-12)

    def test_overflow_marks_outlier(self):
        q = LinearQuantizer(0.01, radius=4)
        errors = np.array([0.0, 1.0])  # 1.0/0.02 = 50 bins > radius
        block = q.quantize(errors, np.array([5.0, 6.0]))
        assert block.n_outliers == 1
        assert block.outlier_values[0] == 6.0
        assert block.codes[1] == 0

    def test_shape_mismatch_raises(self):
        q = LinearQuantizer(0.1)
        with pytest.raises(ValueError):
            q.quantize(np.zeros(3), np.zeros(4))

    def test_codes_for_errors_no_clipping(self):
        q = LinearQuantizer(0.5)
        codes = q.codes_for_errors(np.array([0.0, 1.0, -2.0, 0.4]))
        np.testing.assert_array_equal(codes, [0, 1, -2, 0])

    @given(
        st.floats(1e-6, 1e3),
        st.lists(
            st.floats(-1e6, 1e6, allow_nan=False, allow_infinity=False),
            min_size=1,
            max_size=200,
        ),
    )
    @settings(max_examples=100)
    def test_bound_invariant(self, eb, raw_errors):
        q = LinearQuantizer(eb)
        errors = np.array(raw_errors)
        block = q.quantize(errors, errors)
        recon = q.dequantize(block.codes)
        ok = ~block.outlier_mask
        assert np.all(
            np.abs(errors[ok] - recon[ok]) <= eb * (1 + 1e-9)
        )

    def test_bin_assignment_midpoints(self):
        q = LinearQuantizer(1.0)  # bins of width 2 centred at even ints
        errors = np.array([0.9, 1.1, 2.9, 3.1, -0.9, -1.1])
        codes = q.codes_for_errors(errors)
        np.testing.assert_array_equal(codes, [0, 1, 1, 2, 0, -1])
