"""Unit + property tests for the LZ77 codec."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.compressor.encoders.lz77 import Lz77Codec, Lz77Params


class TestParams:
    def test_window_size(self):
        assert Lz77Params(window_bits=10).window == 1024

    def test_invalid_window(self):
        with pytest.raises(ValueError):
            Lz77Params(window_bits=30)

    def test_invalid_max_match(self):
        with pytest.raises(ValueError):
            Lz77Params(max_match=2)


class TestRoundtrip:
    def test_empty(self):
        codec = Lz77Codec()
        assert codec.decode(codec.encode(b"")) == b""

    def test_short_literal_only(self):
        codec = Lz77Codec()
        data = b"abc"
        assert codec.decode(codec.encode(data)) == data

    def test_repetitive(self):
        codec = Lz77Codec()
        data = b"abcd" * 1000
        out = codec.encode(data)
        assert len(out) < len(data) // 10
        assert codec.decode(out) == data

    def test_zero_runs(self):
        codec = Lz77Codec()
        data = b"\x00" * 10_000 + b"x" + b"\x00" * 5000
        out = codec.encode(data)
        assert len(out) < 200
        assert codec.decode(out) == data

    def test_overlapping_match_semantics(self):
        # 'aaaa...' forces dist < match_len copies.
        codec = Lz77Codec()
        data = b"a" * 500
        assert codec.decode(codec.encode(data)) == data

    def test_random_bytes_do_not_explode(self):
        rng = np.random.default_rng(0)
        data = rng.integers(0, 256, size=4096, dtype=np.uint8).tobytes()
        codec = Lz77Codec()
        out = codec.encode(data)
        # incompressible input grows only by the token framing
        assert len(out) < len(data) * 1.1
        assert codec.decode(out) == data

    def test_stats(self):
        codec = Lz77Codec()
        _, stats = codec.encode_with_stats(b"xy" * 100)
        assert stats.n_input == 200
        assert stats.n_matches >= 1
        assert stats.ratio > 1.0

    @given(st.binary(min_size=0, max_size=2000))
    @settings(max_examples=100, deadline=None)
    def test_roundtrip_random(self, data):
        codec = Lz77Codec()
        assert codec.decode(codec.encode(data)) == data

    @given(
        st.lists(
            st.sampled_from([b"\x00" * 17, b"abc", b"Z", b"\x00\x01"]),
            min_size=0,
            max_size=50,
        )
    )
    @settings(max_examples=50, deadline=None)
    def test_roundtrip_structured(self, pieces):
        data = b"".join(pieces)
        codec = Lz77Codec()
        assert codec.decode(codec.encode(data)) == data

    def test_small_window_still_correct(self):
        codec = Lz77Codec(Lz77Params(window_bits=8))
        data = (b"pattern" * 100) + bytes(range(256)) * 4
        assert codec.decode(codec.encode(data)) == data
