"""Per-tile adaptive configuration: planner, v5 container, round-trips."""

import numpy as np
import pytest

from repro.compressor import (
    AdaptivePlanner,
    CompressionConfig,
    ErrorBoundMode,
    SZCompressor,
    TiledCompressor,
)
from repro.compressor import container
from repro.compressor.adaptive import MIN_QUANT_RADIUS
from repro.compressor.container import TiledReader
from repro.datasets.generators import gaussian_random_field, lognormal_field
from tests.conftest import smooth_field


def heterogeneous_field(shape=(128, 128), seed=7, halo_frac=0.5, contrast=2.5):
    """Smooth background with a halo-dense (lognormal) subregion."""
    bg = gaussian_random_field(shape, slope=4.0, seed=seed).astype(np.float64)
    hs = tuple(max(1, int(n * halo_frac)) for n in shape)
    halos = lognormal_field(hs, slope=2.0, seed=seed + 1, contrast=contrast)
    pad = tuple((n // 8, n - h - n // 8) for n, h in zip(shape, hs))
    return (bg + np.pad(0.5 * halos.astype(np.float64), pad)).astype(
        np.float32
    )


class TestPlanner:
    def test_plan_structure_and_bound_spread(self):
        field = heterogeneous_field()
        eb = 1e-3 * float(field.max() - field.min())
        plan = AdaptivePlanner().plan(
            field, CompressionConfig(error_bound=eb), (32, 32)
        )
        assert plan.n_tiles == 16
        assert plan.nominal_bound == pytest.approx(eb)
        assert np.isfinite(plan.target_psnr)
        # heterogeneous tiles must receive heterogeneous bounds, all
        # within the planner's span of the nominal bound
        bounds = [c.error_bound for c in plan.choices]
        assert max(bounds) > min(bounds)
        planner = AdaptivePlanner()
        for b in bounds:
            assert eb / planner.span <= b <= eb * planner.span * (1 + 1e-9)
        # choices cover the array exactly once
        seen = np.zeros(field.shape, dtype=int)
        for c in plan.choices:
            seen[tuple(slice(a, b) for a, b in zip(c.start, c.stop))] += 1
        assert np.all(seen == 1)

    def test_rel_mode_resolves_global_range(self):
        field = heterogeneous_field()
        vrange = float(field.max() - field.min())
        plan = AdaptivePlanner().plan(
            field,
            CompressionConfig(mode=ErrorBoundMode.REL, error_bound=1e-3),
            (32, 32),
        )
        assert plan.nominal_bound == pytest.approx(1e-3 * vrange)
        assert plan.value_range == pytest.approx(vrange)

    def test_pw_rel_rejected(self):
        field = smooth_field((16, 16))
        config = CompressionConfig(
            mode=ErrorBoundMode.PW_REL, error_bound=1e-3
        )
        with pytest.raises(ValueError):
            AdaptivePlanner().plan(field, config, (8, 8))

    def test_adaptive_pw_rel_config_rejected(self):
        with pytest.raises(ValueError):
            CompressionConfig(
                mode=ErrorBoundMode.PW_REL, error_bound=1e-3, adaptive=True
            )

    def test_constant_rel_field_yields_no_plan(self):
        # nothing to allocate when the bound collapses to zero: the
        # planner punts to the uniform path, which stores it exactly
        config = CompressionConfig(mode=ErrorBoundMode.REL, error_bound=1e-3)
        assert AdaptivePlanner().plan(np.ones((8, 8)), config, (4, 4)) is None

    def test_constant_rel_adaptive_falls_back_to_exact_v4(self):
        data = np.full((16, 12), 3.75)
        config = CompressionConfig(
            mode=ErrorBoundMode.REL,
            error_bound=1e-3,
            tile_shape=(8, 8),
            adaptive=True,
        )
        result = TiledCompressor().compress(data, config)
        assert result.plan is None
        assert result.blob[4] == container.VERSION_TILED
        np.testing.assert_array_equal(
            TiledCompressor().decompress(result.blob), data
        )

    def test_empty_array_rejected(self):
        with pytest.raises(ValueError):
            AdaptivePlanner().plan(
                np.zeros((0, 4)), CompressionConfig(), (2, 2)
            )

    def test_tiny_tiles_fall_back_to_nominal(self):
        field = smooth_field((12, 12))
        config = CompressionConfig(error_bound=1e-3)
        plan = AdaptivePlanner().plan(field, config, (4, 4))
        # 16-point tiles are below the modelling floor
        assert all(c.error_bound == pytest.approx(1e-3) for c in plan.choices)
        assert all(c.predictor == "lorenzo" for c in plan.choices)

    def test_config_predictor_always_a_candidate(self):
        # the user's predictor must never be silently dropped: it joins
        # the candidate set and is the small-tile fallback
        field = smooth_field((24, 24))
        config = CompressionConfig(predictor="regression", error_bound=1e-3)
        planner = AdaptivePlanner(predictors=("interpolation",))
        plan = planner.plan(field, config, (6, 6))
        assert all(c.predictor == "regression" for c in plan.choices)
        # and with modelled tiles, distinct configs can select distinctly
        big = heterogeneous_field()
        plan = AdaptivePlanner(predictors=("interpolation",)).plan(
            big,
            CompressionConfig(predictor="lorenzo", error_bound=1.0),
            (32, 32),
        )
        assert set(c.predictor for c in plan.choices) <= {
            "lorenzo",
            "interpolation",
        }
        assert any(c.predictor == "lorenzo" for c in plan.choices)

    def test_radius_is_power_of_two_within_cap(self):
        field = heterogeneous_field()
        eb = 1e-3 * float(field.max() - field.min())
        plan = AdaptivePlanner().plan(
            field, CompressionConfig(error_bound=eb), (32, 32)
        )
        for c in plan.choices:
            assert MIN_QUANT_RADIUS <= c.quant_radius <= 32768
            assert c.quant_radius & (c.quant_radius - 1) == 0

    def test_invalid_planner_params(self):
        with pytest.raises(ValueError):
            AdaptivePlanner(predictors=())
        with pytest.raises(ValueError):
            AdaptivePlanner(span=0.5)
        with pytest.raises(ValueError):
            AdaptivePlanner(grid_points=2)


class TestV5Container:
    def test_roundtrip_within_per_tile_bounds(self):
        field = heterogeneous_field()
        eb = 1e-3 * float(field.max() - field.min())
        config = CompressionConfig(
            error_bound=eb, tile_shape=(32, 32), adaptive=True
        )
        tc = TiledCompressor()
        result = tc.compress(field, config)
        assert result.blob[4] == container.VERSION_ADAPTIVE
        assert result.plan is not None
        recon = tc.decompress(result.blob)
        assert recon.dtype == field.dtype
        # every tile honours its own recorded bound
        for choice in result.plan.choices:
            slc = tuple(
                slice(a, b) for a, b in zip(choice.start, choice.stop)
            )
            err = np.max(
                np.abs(
                    recon[slc].astype(np.float64)
                    - field[slc].astype(np.float64)
                )
            )
            ulp = float(np.abs(field[slc]).max()) * float(
                np.finfo(np.float32).eps
            )
            assert err <= choice.error_bound * (1 + 1e-9) + ulp

    def test_toc_records_match_plan(self):
        field = heterogeneous_field()
        eb = 1e-3 * float(field.max() - field.min())
        config = CompressionConfig(
            error_bound=eb, tile_shape=(32, 32), adaptive=True
        )
        result = TiledCompressor().compress(field, config)
        with TiledReader(result.blob) as reader:
            assert reader.version == container.VERSION_ADAPTIVE
            assert reader.header["adaptive"] is True
            assert reader.header["nominal_abs_eb"] == pytest.approx(eb)
            assert len(reader.tiles) == result.plan.n_tiles
            for record, choice in zip(reader.tiles, result.plan.choices):
                assert record.config == choice.to_json()
                # the tile payload's own header carries the same choice,
                # so decode needs no global config
                header, _ = SZCompressor._disassemble(
                    reader.read_tile(record)
                )
                assert header["predictor"] == choice.predictor
                assert header["error_bound"] == pytest.approx(
                    choice.error_bound
                )
                assert header["quant_radius"] == choice.quant_radius

    def test_region_decode_matches_full(self):
        field = heterogeneous_field()
        eb = 1e-3 * float(field.max() - field.min())
        config = CompressionConfig(
            error_bound=eb, tile_shape=(32, 32), adaptive=True
        )
        tc = TiledCompressor()
        result = tc.compress(field, config)
        full = tc.decompress(result.blob)
        roi = tc.decompress_region(result.blob, (slice(10, 70), slice(40, 90)))
        np.testing.assert_array_equal(roi, full[10:70, 40:90])
        assert tc.last_tiles_decoded == 6

    def test_streamed_matches_in_memory(self, tmp_path):
        field = heterogeneous_field()
        eb = 1e-3 * float(field.max() - field.min())
        config = CompressionConfig(
            error_bound=eb, tile_shape=(32, 32), adaptive=True
        )
        in_memory = TiledCompressor().compress(field, config)
        out = str(tmp_path / "adaptive.rqsz")
        streamed = TiledCompressor().compress(field, config, out=out)
        assert streamed.blob is None
        with open(out, "rb") as fh:
            assert fh.read() == in_memory.blob

    def test_parallel_encode_is_deterministic(self):
        field = heterogeneous_field()
        eb = 1e-3 * float(field.max() - field.min())
        config = CompressionConfig(
            error_bound=eb, tile_shape=(32, 32), adaptive=True
        )
        serial = TiledCompressor().compress(field, config)
        parallel = TiledCompressor(workers=4).compress(field, config)
        assert serial.blob == parallel.blob

    def test_rel_adaptive_roundtrip(self):
        field = heterogeneous_field()
        config = CompressionConfig(
            mode=ErrorBoundMode.REL,
            error_bound=1e-3,
            tile_shape=(32, 32),
            adaptive=True,
        )
        tc = TiledCompressor()
        result = tc.compress(field, config)
        recon = tc.decompress(result.blob)
        vrange = float(field.max() - field.min())
        planner_span = AdaptivePlanner().span
        err = np.max(np.abs(recon.astype(np.float64) - field))
        assert err <= 1e-3 * vrange * planner_span * (1 + 1e-6)

    def test_constant_abs_adaptive_header_is_strict_json(self):
        # a constant field has zero aggregate MSE -> infinite PSNR
        # target; the on-disk header must stay RFC-8259 JSON (null),
        # not the Python-only 'Infinity' token
        data = np.full((32, 32), 3.0, dtype=np.float32)
        config = CompressionConfig(
            error_bound=0.1, tile_shape=(16, 16), adaptive=True
        )
        result = TiledCompressor().compress(data, config)
        assert b"Infinity" not in result.blob
        with TiledReader(result.blob) as reader:
            assert reader.header["adaptive"] is True
            assert reader.header["target_psnr"] is None
        np.testing.assert_allclose(
            TiledCompressor().decompress(result.blob), data, atol=0.1
        )

    def test_empty_array_falls_back_to_v4(self):
        data = np.zeros((0, 4), dtype=np.float32)
        config = CompressionConfig(tile_shape=(2, 2), adaptive=True)
        result = TiledCompressor().compress(data, config)
        assert result.plan is None
        assert result.blob[4] == container.VERSION_TILED
        out = TiledCompressor().decompress(result.blob)
        assert out.shape == (0, 4)


class TestAdaptiveBeatsUniformOnHeterogeneousData:
    def test_equal_psnr_ratio_gain(self):
        """The acceptance-criterion property at test scale: on a
        heterogeneous field, the adaptive v5 container spends fewer
        bytes than the best uniform v4 config at equal (or better)
        measured PSNR.  The bench (`benchmarks/bench_throughput.py`,
        ``v5_adaptive`` mode) runs the same comparison with a tighter
        bisection and enforces the >= 5% acceptance margin."""
        from repro.analysis.metrics import psnr

        field = heterogeneous_field((256, 256), halo_frac=0.25, contrast=3.0)
        eb = 1.0  # just below background-tile saturation, where the
        # allocation has bits to harvest
        tc = TiledCompressor()
        adaptive = tc.compress(
            field,
            CompressionConfig(
                error_bound=eb, tile_shape=(32, 32), adaptive=True
            ),
        )
        ada_psnr = psnr(field, tc.decompress(adaptive.blob))

        best_uniform = None
        for predictor in ("lorenzo", "interpolation"):
            lo, hi, best = eb / 16, eb * 16, None
            for _ in range(8):
                mid = float(np.sqrt(lo * hi))
                uniform = tc.compress(
                    field,
                    CompressionConfig(
                        predictor=predictor,
                        error_bound=mid,
                        tile_shape=(32, 32),
                    ),
                )
                if psnr(field, tc.decompress(uniform.blob)) >= ada_psnr:
                    best = uniform.compressed_bytes
                    lo = mid
                else:
                    hi = mid
            if best is not None and (
                best_uniform is None or best < best_uniform
            ):
                best_uniform = best
        assert best_uniform is not None
        assert adaptive.compressed_bytes < best_uniform / 1.02
