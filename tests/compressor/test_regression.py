"""Tests for the block linear-regression predictor."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import array_shapes, arrays

from repro.compressor.predictors.regression import RegressionPredictor
from tests.conftest import smooth_field


def roundtrip(data, eb, radius=32768, block=6):
    pred = RegressionPredictor(block=block)
    out = pred.decompose(data, eb, radius)
    return pred.reconstruct(out, data.shape, eb), out


class TestRoundtrip:
    @pytest.mark.parametrize("shape", [(100,), (36, 36), (13, 14, 15)])
    def test_bound_holds(self, shape):
        data = smooth_field(shape).astype(np.float64)
        eb = 1e-3
        recon, _ = roundtrip(data, eb)
        assert np.max(np.abs(recon - data)) <= eb * (1 + 1e-9)

    def test_non_divisible_shapes(self):
        # 6 does not divide 13/17: boundary block groups must roundtrip.
        data = smooth_field((13, 17)).astype(np.float64)
        recon, _ = roundtrip(data, 1e-4)
        assert np.max(np.abs(recon - data)) <= 1e-4 * (1 + 1e-9)

    def test_exactly_linear_data_codes_all_zero(self):
        x = np.arange(36, dtype=np.float64)
        data = np.outer(x, x)[:12, :12] * 0 + (
            3.0 + 2.0 * np.arange(12)[:, None] - np.arange(12)[None, :]
        )
        out = RegressionPredictor().decompose(data, 1e-6, 32768)
        # affine data is fit exactly up to float32 coefficient rounding
        assert np.mean(out.codes == 0) > 0.99

    def test_outliers_roundtrip(self):
        data = smooth_field((24, 24)).astype(np.float64) * 500
        recon, out = roundtrip(data, 1e-4, radius=4)
        assert out.n_outliers > 0
        assert np.max(np.abs(recon - data)) <= 1e-4 * (1 + 1e-9)

    def test_coefficient_payload_size(self):
        data = smooth_field((36, 36)).astype(np.float64)
        out = RegressionPredictor().decompose(data, 1e-3, 32768)
        coeffs = np.frombuffer(out.side_payload, dtype=np.float32)
        assert coeffs.size == 36 * (2 + 1)  # 36 blocks x (ndim + 1)

    def test_block_mismatch_on_reconstruct_raises(self):
        data = smooth_field((12, 12)).astype(np.float64)
        out = RegressionPredictor(block=6).decompose(data, 1e-3, 32768)
        with pytest.raises(ValueError):
            RegressionPredictor(block=4).reconstruct(out, data.shape, 1e-3)

    def test_invalid_block(self):
        with pytest.raises(ValueError):
            RegressionPredictor(block=1)

    @given(
        arrays(
            np.float64,
            array_shapes(min_dims=1, max_dims=3, min_side=2, max_side=13),
            elements=st.floats(-50, 50, allow_nan=False),
        ),
        st.floats(1e-4, 1.0),
    )
    @settings(max_examples=50, deadline=None)
    def test_bound_property(self, data, eb):
        recon, _ = roundtrip(data, eb)
        assert np.max(np.abs(recon - data)) <= eb * (1 + 1e-9)


class TestBlockMath:
    def test_to_from_blocks_inverse(self):
        pred = RegressionPredictor()
        data = np.arange(48.0).reshape(6, 8)
        blocks = pred._to_blocks(data, (3, 4))
        back = pred._from_blocks(blocks, (6, 8), (3, 4))
        np.testing.assert_array_equal(back, data)

    def test_fit_recovers_affine_coefficients(self):
        pred = RegressionPredictor()
        b = 6
        ii, jj = np.meshgrid(np.arange(b), np.arange(b), indexing="ij")
        block = (2.0 + 0.5 * ii - 0.25 * jj)[None, ...]
        coeffs, preds = pred._fit_block_group(block)
        assert coeffs[0, 0] == pytest.approx(2.0, abs=1e-5)
        assert coeffs[0, 1] == pytest.approx(0.5, abs=1e-5)
        assert coeffs[0, 2] == pytest.approx(-0.25, abs=1e-5)
        np.testing.assert_allclose(preds[0], block[0], atol=1e-4)


class TestSampling:
    def test_block_sampling_statistics(self):
        data = smooth_field((60, 60)).astype(np.float64)
        pred = RegressionPredictor()
        full = pred.prediction_errors(data)
        sampled = pred.sample_errors(data, 0.3, np.random.default_rng(0))
        assert sampled.size % 36 == 0  # whole 6x6 blocks
        assert np.std(sampled) == pytest.approx(np.std(full), rel=0.5)

    def test_small_array_falls_back_to_full(self):
        data = smooth_field((5,)).astype(np.float64)
        pred = RegressionPredictor()
        sampled = pred.sample_errors(data, 0.5, np.random.default_rng(0))
        assert sampled.size == data.size
