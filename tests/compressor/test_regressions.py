"""Regression tests for the fixed crash/overflow bugs.

Each test encodes the failing-before behaviour: constant fields under
REL mode, empty inputs, the ``np.exp`` overflow in the bitrate
inversion, and raw ``IndexError`` escapes from truncated or corrupted
Huffman payloads.
"""

import warnings

import numpy as np
import pytest

from repro.compressor import CompressionConfig, ErrorBoundMode, SZCompressor
from repro.compressor.encoders.huffman import HuffmanCode, HuffmanEncoder
from repro.core.encoder_model import HuffmanAnchorModel


def test_rel_mode_constant_field_roundtrips():
    """`ValueError: error_bound must be positive` on constant REL input."""
    sz = SZCompressor()
    data = np.full(1000, 6.5)
    cfg = CompressionConfig(mode=ErrorBoundMode.REL, error_bound=1e-3)
    _, recon = sz.roundtrip(data, cfg)
    np.testing.assert_array_equal(recon, data)


def test_empty_array_roundtrips():
    """`ValueError: cannot compress an empty array` on size-0 input."""
    sz = SZCompressor()
    data = np.zeros((0, 3), dtype=np.float32)
    result, recon = sz.roundtrip(data, CompressionConfig())
    assert recon.shape == (0, 3)
    assert recon.dtype == np.float32
    assert result.compressed_bytes > 0


def test_bitrate_inversion_does_not_overflow_exp():
    """`RuntimeWarning: overflow encountered in exp` in the PCHIP
    extrapolation region of ``error_bound_for_bitrate`` (the inverse
    bitrate interpolation); the interpolant is now clamped and the
    result stays finite."""
    rng = np.random.default_rng(0)
    errors = np.exp(
        rng.uniform(np.log(1e-140), np.log(1e140), 4000)
    ) * rng.choice([-1, 1], 4000)
    model = HuffmanAnchorModel(errors)
    with warnings.catch_warnings():
        warnings.simplefilter("error", RuntimeWarning)
        for target in (1.2, 1.5, 2.0, 5.0):
            eb = model.error_bound_for_bitrate(target)
            assert np.isfinite(eb)


class TestHuffmanTruncationErrors:
    """Truncated/corrupted payloads raised raw IndexError from the
    decode window; they must surface as clean ValueError instead."""

    def _overrun_blob(self, encoder, sync: bool) -> bytes:
        # A stream whose tail bits, when corrupted, make the decoder
        # walk past the end of the payload.
        rng = np.random.default_rng(5)
        n = 20000 if sync else 2000
        stream = rng.integers(-1000, 1000, size=n)
        return encoder.encode(stream)

    @pytest.mark.parametrize("sync", [False, True])
    def test_corrupted_tail_never_indexerror(self, sync):
        encoder = HuffmanEncoder()
        if not sync:
            # force the legacy scalar path via a sync-free serialization
            rng = np.random.default_rng(5)
            stream = rng.integers(-1000, 1000, size=2000)
            code = HuffmanCode.from_stream(stream)
            dense = np.searchsorted(code.symbols, stream)
            from repro.compressor.bitstream import pack_codes

            payload, total = pack_codes(
                code.codes[dense], code.lengths[dense]
            )
            blob = encoder._serialize(code, stream.size, payload, total)
        else:
            blob = self._overrun_blob(encoder, sync=True)
        for pos in range(len(blob) - 32, len(blob)):
            corrupted = bytearray(blob)
            corrupted[pos] ^= 0xFF
            try:
                encoder.decode(bytes(corrupted))
            except ValueError:
                pass  # the only acceptable failure mode

    def test_truncation_at_every_offset_never_indexerror(self):
        # sparse alphabet: large Elias-gamma deltas whose value bits sit
        # at the end of the header — truncating inside them must not
        # escape as IndexError from the vectorized gamma decode
        rng = np.random.default_rng(9)
        stream = np.concatenate(
            [
                rng.integers(0, 50, 280),
                rng.choice([10**9, 10**12, 10**15], 20),
            ]
        )
        blob = HuffmanEncoder().encode(stream)
        for cut in range(4, len(blob)):
            try:
                HuffmanEncoder().decode(blob[:cut])
            except ValueError:
                pass  # the only acceptable failure mode

    @pytest.mark.parametrize("cut", [1, 7, 64])
    def test_truncated_payload_clean_error(self, cut):
        encoder = HuffmanEncoder()
        rng = np.random.default_rng(6)
        blob = encoder.encode(rng.integers(0, 500, size=30000))
        with pytest.raises(ValueError):
            encoder.decode(blob[: len(blob) - cut])

    def test_overstated_n_data_rejected(self):
        # header claims more symbols than the payload can hold
        encoder = HuffmanEncoder()
        stream = np.arange(128)
        code = HuffmanCode.from_stream(stream)
        dense = np.searchsorted(code.symbols, stream)
        from repro.compressor.bitstream import pack_codes

        payload, total = pack_codes(code.codes[dense], code.lengths[dense])
        blob = encoder._serialize(code, 10**9, payload, total)
        with pytest.raises(ValueError):
            encoder.decode(blob)
