"""Degenerate-input roundtrips: constant, empty, scalar, singleton."""

import numpy as np
import pytest

from repro.compressor import CompressionConfig, ErrorBoundMode, SZCompressor
from tests.conftest import assert_error_bounded


@pytest.fixture(scope="module")
def sz():
    return SZCompressor()


class TestConstantFields:
    @pytest.mark.parametrize("predictor", ["lorenzo", "interpolation", "regression"])
    @pytest.mark.parametrize("shape", [(100,), (12, 13), (6, 7, 8)])
    def test_rel_mode_reconstructs_exactly(self, sz, predictor, shape):
        # Regression: REL on a constant field used to raise
        # "error_bound must be positive" (absolute bound collapses to 0).
        data = np.full(shape, 3.25)
        cfg = CompressionConfig(
            predictor=predictor, mode=ErrorBoundMode.REL, error_bound=1e-3
        )
        result, recon = sz.roundtrip(data, cfg)
        np.testing.assert_array_equal(recon, data)
        assert recon.dtype == data.dtype
        assert result.ratio > 1.0

    def test_rel_mode_constant_float32(self, sz):
        data = np.full((50, 50), -7.125, dtype=np.float32)
        cfg = CompressionConfig(mode=ErrorBoundMode.REL, error_bound=1e-4)
        _, recon = sz.roundtrip(data, cfg)
        np.testing.assert_array_equal(recon, data)
        assert recon.dtype == np.float32

    def test_abs_mode_constant_bounded(self, sz):
        data = np.full((40, 40), 11.5)
        cfg = CompressionConfig(error_bound=1e-3)
        _, recon = sz.roundtrip(data, cfg)
        assert_error_bounded(data, recon, 1e-3)

    def test_pw_rel_mode_constant_bounded(self, sz):
        data = np.full((40, 40), 2.5)
        cfg = CompressionConfig(
            mode=ErrorBoundMode.PW_REL, error_bound=1e-3
        )
        _, recon = sz.roundtrip(data, cfg)
        rel = np.abs(recon / data - 1.0)
        assert np.max(rel) <= 1e-3 * (1 + 1e-9)

    def test_constant_zeros_rel(self, sz):
        data = np.zeros((30, 30))
        cfg = CompressionConfig(mode=ErrorBoundMode.REL, error_bound=1e-2)
        _, recon = sz.roundtrip(data, cfg)
        np.testing.assert_array_equal(recon, data)


class TestEmptyInputs:
    @pytest.mark.parametrize("shape", [(0,), (0, 5), (3, 0, 4)])
    @pytest.mark.parametrize("mode", list(ErrorBoundMode))
    def test_empty_roundtrip(self, sz, shape, mode):
        # Regression: empty arrays used to raise "cannot compress an
        # empty array"; in-situ pipelines hit empty partitions.
        data = np.zeros(shape, dtype=np.float64)
        cfg = CompressionConfig(mode=mode, error_bound=1e-3)
        result, recon = sz.roundtrip(data, cfg)
        assert recon.shape == shape
        assert recon.dtype == data.dtype
        assert result.n_points == 0
        assert result.bit_rate == 0.0

    def test_empty_float32_dtype_preserved(self, sz):
        data = np.zeros((0, 7), dtype=np.float32)
        _, recon = sz.roundtrip(data, CompressionConfig())
        assert recon.shape == (0, 7)
        assert recon.dtype == np.float32

    def test_empty_chunked_config(self, sz):
        data = np.zeros(0)
        cfg = CompressionConfig(error_bound=1e-3, chunk_size=256)
        _, recon = sz.roundtrip(data, cfg)
        assert recon.shape == (0,)


class TestScalarAndSingleton:
    def test_zero_dim_array(self, sz):
        data = np.array(1.75)
        _, recon = sz.roundtrip(data, CompressionConfig(error_bound=1e-3))
        assert recon.shape == ()
        assert_error_bounded(data, recon, 1e-3)

    def test_zero_dim_rel_mode(self, sz):
        # a single value has zero range: the REL constant path applies
        data = np.array(42.0)
        cfg = CompressionConfig(mode=ErrorBoundMode.REL, error_bound=1e-3)
        _, recon = sz.roundtrip(data, cfg)
        assert recon.shape == ()
        assert float(recon) == 42.0

    @pytest.mark.parametrize("shape", [(1,), (1, 1), (1, 1, 1)])
    def test_singleton_arrays(self, sz, shape):
        data = np.full(shape, -3.5)
        _, recon = sz.roundtrip(data, CompressionConfig(error_bound=1e-4))
        assert recon.shape == shape
        assert_error_bounded(data, recon, 1e-4)

    def test_singleton_rel_mode(self, sz):
        data = np.full((1,), 9.75)
        cfg = CompressionConfig(mode=ErrorBoundMode.REL, error_bound=1e-3)
        _, recon = sz.roundtrip(data, cfg)
        np.testing.assert_array_equal(recon, data)


class TestDtypePreservation:
    @pytest.mark.parametrize("chunk_size", [None, 300])
    def test_float32_roundtrip(self, sz, chunk_size):
        rng = np.random.default_rng(0)
        data = rng.standard_normal((40, 40)).astype(np.float32)
        cfg = CompressionConfig(error_bound=1e-3, chunk_size=chunk_size)
        _, recon = sz.roundtrip(data, cfg)
        assert recon.dtype == np.float32
        assert_error_bounded(data, recon, 1e-3)
