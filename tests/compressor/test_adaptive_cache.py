"""Adaptive planner fit reuse + cross-snapshot plan cache.

Covers the vectorized planning pipeline around the codec itself: plan
determinism across execution backends, cluster/fit accounting, the
drift-refit guard, and every :class:`PlannerCache` path — hit, miss,
drift fallback, corrupt files and structurally invalid entries.
"""

import json
import os
from dataclasses import replace

import numpy as np
import pytest

from repro.compressor import (
    CompressionConfig,
    ErrorBoundMode,
    PlannerCache,
    TiledCompressor,
)
from repro.compressor.adaptive import AdaptivePlan, AdaptivePlanner
from repro.compressor.inspect import describe_container
from repro.compressor.plan_cache import (
    fingerprint_drift,
    planner_config_hash,
    stats_fingerprint,
)
from repro.compressor.tiled_geometry import iter_tiles
from repro.core.sampling import batch_tile_stats


def halo_field(shape=(128, 128), noise=2.0, seed=0):
    """Clustered test field: smooth halo + oscillation + noise."""
    rng = np.random.default_rng(seed)
    yy, xx = np.mgrid[0 : shape[0], 0 : shape[1]]
    cy, cx = shape[0] / 2, shape[1] / 2
    return (
        40.0 * np.exp(-((yy - cy) ** 2 + (xx - cx) ** 2) / (2 * 20.0**2))
        + 8.0 * np.sin(xx / 9.0) * np.cos(yy / 13.0)
        + rng.normal(0.0, noise, shape)
    )


CONFIG = CompressionConfig(
    error_bound=1.0, tile_shape=(32, 32), adaptive=True
)


def strip_stats(plan: AdaptivePlan) -> AdaptivePlan:
    return replace(plan, stats=None)


class TestPlanDeterminism:
    @pytest.mark.parametrize("backend", ["serial", "thread", "process"])
    def test_same_plan_on_every_backend(self, backend):
        data = halo_field()
        serial = TiledCompressor(backend="serial").compress(data, CONFIG)
        other = TiledCompressor(workers=3, backend=backend).compress(
            data, CONFIG
        )
        # identical choices AND identical deterministic counters;
        # plan_seconds is excluded from PlanStats equality
        assert strip_stats(serial.plan) == strip_stats(other.plan)
        assert serial.plan.stats == other.plan.stats
        assert serial.blob == other.blob

    def test_repeat_plan_is_identical(self):
        data = halo_field()
        planner = AdaptivePlanner()
        p1 = planner.plan(data, CONFIG, (32, 32))
        p2 = planner.plan(data, CONFIG, (32, 32))
        assert p1 == p2


class TestClustering:
    def test_clustering_shares_fits(self):
        plan = AdaptivePlanner().plan(halo_field(), CONFIG, (32, 32))
        stats = plan.stats
        assert stats.tiles_planned == 16
        assert stats.fits_performed < stats.tiles_planned
        assert 0 < stats.clusters <= stats.fits_performed

    def test_fit_clusters_zero_fits_every_tile(self):
        config = replace(CONFIG, fit_clusters=0)
        plan = AdaptivePlanner().plan(halo_field(), config, (32, 32))
        assert plan.stats.fits_performed == plan.stats.tiles_modeled
        assert plan.stats.clusters == plan.stats.tiles_modeled

    def test_clustered_plan_matches_per_tile_plan(self):
        """Sharing fits must not change the planned choices here."""
        data = halo_field()
        planner = AdaptivePlanner()
        clustered = planner.plan(data, CONFIG, (32, 32))
        per_tile = planner.plan(
            data, replace(CONFIG, fit_clusters=0), (32, 32)
        )
        assert [c.to_json() for c in clustered.choices] == [
            c.to_json() for c in per_tile.choices
        ]

    def test_refit_guard_triggers_on_forced_single_cluster(self):
        """Tiles whose quantization behaviour deviates get own fits."""
        rng = np.random.default_rng(1)
        data = np.zeros((128, 128))
        # left half lands exactly on the 2*eb lattice (zero residual),
        # right half is continuous (saturating residual): no shared fit
        # can represent both
        data[:, :64] = 2.0 * np.round(rng.normal(0, 5, (128, 64)))
        data[:, 64:] = rng.uniform(-10.0, 10.0, (128, 64))
        config = replace(CONFIG, fit_clusters=1)
        plan = AdaptivePlanner().plan(data, config, (32, 32))
        assert plan.stats.refits > 0
        assert (
            plan.stats.fits_performed
            == plan.stats.clusters + plan.stats.refits
        )

    def test_planner_validates_parameters(self):
        with pytest.raises(ValueError):
            AdaptivePlanner(fit_clusters=-1)
        with pytest.raises(ValueError):
            AdaptivePlanner(refit_tolerance=-0.1)


class TestPlanPayload:
    def test_payload_round_trip(self):
        plan = AdaptivePlanner().plan(halo_field(), CONFIG, (32, 32))
        back = AdaptivePlan.from_payload(
            json.loads(json.dumps(plan.to_payload()))
        )
        assert back == strip_stats(plan)

    def test_payload_maps_non_finite_to_null(self):
        """Fallback tiles carry NaN estimates; JSON must stay strict."""
        data = np.arange(6.0).reshape(2, 3)  # tiles below MIN_PLAN_POINTS
        plan = AdaptivePlanner().plan(
            data, replace(CONFIG, tile_shape=(2, 2)), (2, 2)
        )
        blob = json.dumps(plan.to_payload())
        json.loads(blob)  # strict RFC-8259, no NaN/Infinity tokens
        assert "NaN" not in blob and "Infinity" not in blob


class TestPlannerCache:
    def test_hit_miss_drift_accounting(self):
        data = halo_field()
        cache = PlannerCache()
        planner = AdaptivePlanner(cache=cache)
        p1 = planner.plan(data, CONFIG, (32, 32), dataset="halo")
        assert p1.stats.cache == "miss"
        p2 = planner.plan(data, CONFIG, (32, 32), dataset="halo")
        assert p2.stats.cache == "hit"
        assert p2.stats.fits_performed == 0
        assert [c.to_json() for c in p2.choices] == [
            c.to_json() for c in p1.choices
        ]
        # a near snapshot (in-tolerance noise) still hits
        near = data + np.random.default_rng(7).normal(0, 0.2, data.shape)
        p3 = planner.plan(near, CONFIG, (32, 32), dataset="halo")
        assert p3.stats.cache == "hit"
        # a drifted snapshot falls back to a fresh plan
        far = data * 3.0 + 50.0
        p4 = planner.plan(far, CONFIG, (32, 32), dataset="halo")
        assert p4.stats.cache == "drift"
        assert p4.stats.fits_performed > 0
        assert cache.counters == {
            "hits": 2,
            "misses": 1,
            "drifts": 1,
            "rejected": 0,
        }

    def test_drift_replan_refreshes_entry(self):
        data = halo_field()
        cache = PlannerCache()
        planner = AdaptivePlanner(cache=cache)
        planner.plan(data, CONFIG, (32, 32), dataset="halo")
        far = data * 3.0 + 50.0
        planner.plan(far, CONFIG, (32, 32), dataset="halo")
        # the refreshed entry serves the *new* snapshot statistics
        p = planner.plan(far, CONFIG, (32, 32), dataset="halo")
        assert p.stats.cache == "hit"

    def test_config_change_misses(self):
        data = halo_field()
        cache = PlannerCache()
        planner = AdaptivePlanner(cache=cache)
        planner.plan(data, CONFIG, (32, 32), dataset="halo")
        other = replace(CONFIG, error_bound=0.5)
        p = planner.plan(data, other, (32, 32), dataset="halo")
        assert p.stats.cache == "miss"

    def test_separate_datasets_do_not_collide(self):
        data = halo_field()
        cache = PlannerCache()
        planner = AdaptivePlanner(cache=cache)
        planner.plan(data, CONFIG, (32, 32), dataset="a")
        p = planner.plan(data, CONFIG, (32, 32), dataset="b")
        assert p.stats.cache == "miss"
        assert len(cache) == 2

    def test_file_backed_round_trip(self, tmp_path):
        path = tmp_path / "plans.json"
        data = halo_field()
        c1 = PlannerCache(path=path)
        AdaptivePlanner(cache=c1).plan(
            data, CONFIG, (32, 32), dataset="halo"
        )
        assert path.exists()
        c2 = PlannerCache(path=path)
        p = AdaptivePlanner(cache=c2).plan(
            data, CONFIG, (32, 32), dataset="halo"
        )
        assert p.stats.cache == "hit"

    def test_at_path_shares_one_instance(self, tmp_path):
        path = tmp_path / "plans.json"
        assert PlannerCache.at_path(path) is PlannerCache.at_path(path)

    def test_corrupt_cache_file_starts_empty(self, tmp_path):
        path = tmp_path / "plans.json"
        path.write_text("{ not json !!")
        cache = PlannerCache(path=path)
        assert len(cache) == 0
        assert cache.counters["rejected"] == 1
        # and the cache still works end to end
        data = halo_field()
        planner = AdaptivePlanner(cache=cache)
        planner.plan(data, CONFIG, (32, 32), dataset="halo")
        p = planner.plan(data, CONFIG, (32, 32), dataset="halo")
        assert p.stats.cache == "hit"

    def test_structurally_invalid_entry_is_dropped(self, tmp_path):
        path = tmp_path / "plans.json"
        path.write_text(
            json.dumps(
                {
                    "format": "repro-plan-cache-v1",
                    "entries": {"halo": {"config_hash": "x"}},
                }
            )
        )
        cache = PlannerCache(path=path)
        assert len(cache) == 0
        assert cache.counters["rejected"] == 1

    def test_corrupt_plan_payload_falls_back_to_fresh(self):
        """An entry whose plan cannot be rebuilt is rejected, not fatal."""
        data = halo_field()
        cache = PlannerCache()
        planner = AdaptivePlanner(cache=cache)
        planner.plan(data, CONFIG, (32, 32), dataset="halo")
        with cache._lock:
            cache._entries["halo"]["plan"]["choices"][0]["error_bound"] = -1
        p = planner.plan(data, CONFIG, (32, 32), dataset="halo")
        assert p.stats.cache == "miss"
        assert p.stats.fits_performed > 0
        assert cache.counters["rejected"] == 1

    def test_fingerprint_drift_metric(self):
        data = halo_field()
        extents = list(iter_tiles(data.shape, (32, 32)))
        fp = stats_fingerprint(batch_tile_stats(data, extents))
        assert fingerprint_drift(fp, fp) == 0.0
        shifted = stats_fingerprint(
            batch_tile_stats(data + 0.5, extents)
        )
        assert 0.0 < fingerprint_drift(fp, shifted) < 0.1
        assert fingerprint_drift(fp, {"version": 99}) == float("inf")

    def test_config_hash_covers_planner_knobs(self):
        planner = AdaptivePlanner()
        base = planner_config_hash(CONFIG, planner)
        assert planner_config_hash(CONFIG, planner) == base
        assert (
            planner_config_hash(
                replace(CONFIG, error_bound=2.0), planner
            )
            != base
        )
        assert (
            planner_config_hash(
                replace(CONFIG, fit_clusters=2), planner
            )
            != base
        )
        assert (
            planner_config_hash(CONFIG, AdaptivePlanner(seed=9)) != base
        )


class TestCompressorIntegration:
    def test_header_records_planner_stats(self):
        result = TiledCompressor().compress(halo_field(), CONFIG)
        header = describe_container(result.blob)
        stats = header["planner_stats"]
        assert set(stats) == {
            "tiles_planned",
            "tiles_modeled",
            "clusters",
            "fits_performed",
            "refits",
            "cache",
        }
        assert stats["cache"] == "disabled"
        # strict JSON all the way through
        json.loads(json.dumps(header, allow_nan=False))

    def test_cached_compress_decodes_identically(self, tmp_path):
        data = halo_field()
        tc = TiledCompressor(plan_cache=str(tmp_path / "plans.json"))
        first = tc.compress(data, CONFIG, dataset="halo")
        second = tc.compress(data, CONFIG, dataset="halo")
        assert second.plan.stats.cache == "hit"
        np.testing.assert_array_equal(
            TiledCompressor().decompress(first.blob),
            TiledCompressor().decompress(second.blob),
        )

    def test_config_plan_cache_path_is_used(self, tmp_path):
        path = tmp_path / "plans.json"
        config = replace(CONFIG, plan_cache=str(path))
        tc = TiledCompressor()
        tc.compress(halo_field(), config, dataset="halo")
        assert path.exists()
        result = tc.compress(halo_field(), config, dataset="halo")
        assert result.plan.stats.cache == "hit"

    def test_rel_mode_plans_through_cache(self):
        data = halo_field()
        cache = PlannerCache()
        tc = TiledCompressor(plan_cache=cache)
        config = replace(
            CONFIG, mode=ErrorBoundMode.REL, error_bound=1e-3
        )
        first = tc.compress(data, config, dataset="halo")
        second = tc.compress(data, config, dataset="halo")
        assert second.plan.stats.cache == "hit"
        recon = TiledCompressor().decompress(second.blob)
        span = float(data.max() - data.min())
        for choice in second.plan.choices:
            slc = tuple(
                slice(a, b) for a, b in zip(choice.start, choice.stop)
            )
            err = float(np.max(np.abs(data[slc] - recon[slc])))
            assert err <= choice.error_bound * (1 + 1e-9)
        assert first.plan.nominal_bound == pytest.approx(1e-3 * span)
