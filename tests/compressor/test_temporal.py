"""Unit tests for the temporal snapshot-stream compressor (v6)."""

from __future__ import annotations

import io

import numpy as np
import pytest

from repro.compressor import (
    CompressionConfig,
    ErrorBoundMode,
    TemporalCompressor,
    TiledCompressor,
)
from repro.compressor.container import TiledReader
from repro.compressor.inspect import describe_container
from tests.conftest import assert_error_bounded, smooth_field

EB = 1e-3


def chain(n=4, shape=(40, 40), seed=5, drift=0.02):
    """A deterministic stream of smoothly drifting snapshots."""
    snaps = [smooth_field(shape, seed=seed).astype(np.float64)]
    for i in range(1, n):
        bump = smooth_field(shape, seed=seed + i, noise=0.0)
        snaps.append(snaps[-1] + drift * bump.astype(np.float64))
    return snaps


def config(**overrides):
    base = dict(error_bound=EB, tile_shape=(16, 16))
    base.update(overrides)
    return CompressionConfig(**base)


def test_keyframe_is_plain_tiled_container():
    tc = TemporalCompressor()
    result = tc.compress_snapshot(chain(1)[0], config())
    assert result.keyframe
    assert result.blob[4] == 4
    assert result.stats is None
    # standalone decode, also through the plain tiled front-end
    np.testing.assert_array_equal(
        tc.decompress(result.blob),
        TiledCompressor().decompress(result.blob),
    )


def test_delta_roundtrip_holds_bound_on_every_snapshot():
    snaps = chain(4)
    tc = TemporalCompressor()
    reference = None
    for i, snap in enumerate(snaps):
        result = tc.compress_snapshot(
            snap,
            config(),
            reference=reference,
            ref_id=f"s{i - 1}" if reference is not None else None,
            snapshot_index=i,
        )
        recon = tc.decompress(result.blob, reference=reference)
        assert_error_bounded(snap, recon, EB)
        assert result.keyframe == (i == 0)
        reference = recon


def test_delta_container_is_v6_with_stats_and_modes():
    snaps = chain(2)
    tc = TemporalCompressor()
    ref = tc.decompress(tc.compress_snapshot(snaps[0], config()).blob)
    result = tc.compress_snapshot(
        snaps[1], config(), reference=ref, ref_id="v0", snapshot_index=1
    )
    assert not result.keyframe
    assert result.blob[4] == 6
    stats = result.stats
    assert stats.tiles == result.n_tiles == 9
    assert stats.temporal_tiles + stats.spatial_tiles == stats.tiles
    assert stats.temporal_tiles > 0  # drifting field: deltas win
    with TiledReader(result.blob) as reader:
        assert reader.header["temporal"] is True
        assert reader.header["ref_snapshot"] == "v0"
        assert reader.header["snapshot_index"] == 1
        assert reader.header["temporal_stats"] == stats.to_json()
        modes = [record.temporal for record in reader.tiles]
        assert sum(modes) == stats.temporal_tiles


def test_region_decode_matches_full_decode():
    snaps = chain(2)
    tc = TemporalCompressor()
    ref = tc.decompress(tc.compress_snapshot(snaps[0], config()).blob)
    result = tc.compress_snapshot(snaps[1], config(), reference=ref)
    full = tc.decompress(result.blob, reference=ref)
    region = (slice(7, 31), slice(10, 38))
    roi = tc.decompress_region(result.blob, region, reference=ref)
    np.testing.assert_array_equal(roi, full[region])


def test_rel_bound_resolves_against_current_snapshot():
    snaps = chain(2, drift=0.05)
    tc = TemporalCompressor()
    cfg = config(error_bound=1e-4, mode=ErrorBoundMode.REL)
    ref = tc.decompress(tc.compress_snapshot(snaps[0], cfg).blob)
    result = tc.compress_snapshot(snaps[1], cfg, reference=ref)
    recon = tc.decompress(result.blob, reference=ref)
    abs_eb = 1e-4 * float(np.ptp(snaps[1]))
    assert_error_bounded(snaps[1], recon, abs_eb)
    with TiledReader(result.blob) as reader:
        assert reader.header["abs_eb"] == pytest.approx(abs_eb)


def test_pw_rel_is_rejected():
    tc = TemporalCompressor()
    with pytest.raises(ValueError, match="ABS and REL"):
        tc.compress_snapshot(
            chain(1)[0], config(mode=ErrorBoundMode.PW_REL)
        )


def test_mismatched_reference_shape_is_rejected():
    tc = TemporalCompressor()
    snap = chain(1)[0]
    with pytest.raises(ValueError, match="reference shape"):
        tc.compress_snapshot(snap, config(), reference=snap[:-1])


def test_decode_without_reference_is_rejected():
    snaps = chain(2)
    tc = TemporalCompressor()
    ref = tc.decompress(tc.compress_snapshot(snaps[0], config()).blob)
    result = tc.compress_snapshot(snaps[1], config(), reference=ref)
    with pytest.raises(ValueError, match="reference"):
        tc.decompress(result.blob)
    with pytest.raises(ValueError, match="reference shape"):
        tc.decompress(result.blob, reference=ref[:-1])


def test_tiled_front_end_refuses_v6():
    snaps = chain(2)
    tc = TemporalCompressor()
    ref = tc.decompress(tc.compress_snapshot(snaps[0], config()).blob)
    result = tc.compress_snapshot(snaps[1], config(), reference=ref)
    tiled = TiledCompressor()
    with pytest.raises(ValueError, match="TemporalCompressor"):
        tiled.decompress(result.blob)
    with pytest.raises(ValueError, match="TemporalCompressor"):
        tiled.decompress_region(result.blob, (slice(0, 4), slice(0, 4)))


def test_identical_snapshot_yields_trivial_tiles():
    snap = chain(1)[0]
    tc = TemporalCompressor()
    ref = tc.decompress(tc.compress_snapshot(snap, config()).blob)
    result = tc.compress_snapshot(snap, config(), reference=ref)
    assert result.stats.trivial_tiles == result.stats.tiles
    assert result.stats.temporal_tiles == result.stats.tiles
    recon = tc.decompress(result.blob, reference=ref)
    assert_error_bounded(snap, recon, EB)
    # trivial residuals make the delta cheaper than a fresh keyframe
    keyframe_bytes = tc.compress_snapshot(snap, config()).compressed_bytes
    assert result.compressed_bytes < keyframe_bytes


def test_integer_snapshots_fall_back_to_spatial():
    rng = np.random.default_rng(9)
    snap0 = rng.integers(-1000, 1000, size=(32, 32), dtype=np.int32)
    snap1 = snap0 + rng.integers(-3, 4, size=(32, 32), dtype=np.int32)
    tc = TemporalCompressor()
    ref = tc.decompress(tc.compress_snapshot(snap0, config()).blob)
    result = tc.compress_snapshot(snap1, config(), reference=ref)
    assert result.stats.spatial_tiles == result.stats.tiles
    assert result.stats.temporal_tiles == 0
    recon = tc.decompress(result.blob, reference=ref)
    assert_error_bounded(snap1, recon, EB)


def test_uncorrelated_tiles_choose_spatial():
    snaps = chain(2)
    snap1 = snaps[1].copy()
    # replace one tile with an uncorrelated field: the temporal
    # residual there is more complex than the tile itself
    snap1[:16, :16] = 10.0 * smooth_field(
        (16, 16), seed=321, noise=0.5
    ).astype(np.float64)
    tc = TemporalCompressor()
    ref = tc.decompress(tc.compress_snapshot(snaps[0], config()).blob)
    result = tc.compress_snapshot(snap1, config(), reference=ref)
    assert result.stats.spatial_tiles >= 1
    assert result.stats.temporal_tiles >= 1
    recon = tc.decompress(result.blob, reference=ref)
    assert_error_bounded(snap1, recon, EB)


def test_tiny_tiles_use_measured_decisions():
    snaps = chain(2, shape=(12, 12))
    tc = TemporalCompressor()
    cfg = config(tile_shape=(4, 4), error_bound=1e-6)
    ref = tc.decompress(tc.compress_snapshot(snaps[0], cfg).blob)
    result = tc.compress_snapshot(snaps[1], cfg, reference=ref)
    assert result.stats.model_decisions == 0
    assert (
        result.stats.measured_decisions + result.stats.trivial_tiles
        == result.stats.tiles
    )
    recon = tc.decompress(result.blob, reference=ref)
    assert_error_bounded(snaps[1], recon, 1e-6)


def test_empty_reference_falls_back_to_keyframe():
    tc = TemporalCompressor()
    empty = np.zeros((0, 8))
    result = tc.compress_snapshot(empty, config(), reference=empty)
    assert result.keyframe


def test_file_sink_roundtrip(tmp_path):
    snaps = chain(2)
    tc = TemporalCompressor()
    ref = tc.decompress(tc.compress_snapshot(snaps[0], config()).blob)
    path = tmp_path / "delta.rqsz"
    result = tc.compress_snapshot(
        snaps[1], config(), reference=ref, out=str(path)
    )
    assert result.blob is None
    assert path.stat().st_size == result.compressed_bytes
    recon = tc.decompress(str(path), reference=ref)
    np.testing.assert_array_equal(
        recon,
        tc.decompress(
            io.BytesIO(path.read_bytes()).getvalue(), reference=ref
        ),
    )
    assert_error_bounded(snaps[1], recon, EB)


def test_inspect_reports_temporal_rollup():
    snaps = chain(2)
    tc = TemporalCompressor()
    ref = tc.decompress(tc.compress_snapshot(snaps[0], config()).blob)
    result = tc.compress_snapshot(
        snaps[1], config(), reference=ref, ref_id="v0"
    )
    info = describe_container(result.blob)
    assert info["temporal"] is True
    assert info["ref_snapshot"] == "v0"
    rollup = info["tile_map"]["temporal"]
    assert rollup["temporal_tiles"] == result.stats.temporal_tiles
    assert rollup["spatial_tiles"] == result.stats.spatial_tiles
    assert info["temporal_stats"] == result.stats.to_json()
    assert all("temporal" in t for t in info["tile_map"]["tiles"])


def test_temporal_config_validation():
    with pytest.raises(ValueError, match="ABS and REL"):
        CompressionConfig(temporal=True, mode=ErrorBoundMode.PW_REL)
    with pytest.raises(ValueError, match="mutually exclusive"):
        CompressionConfig(
            temporal=True, adaptive=True, tile_shape=(8, 8)
        )


def test_scratch_vs_delta_byte_advantage():
    """Correlated streams: deltas beat from-scratch re-encoding."""
    snaps = chain(6, shape=(48, 48), drift=0.01)
    tc = TemporalCompressor()
    cfg = config(tile_shape=(24, 24))
    scratch = sum(
        tc.compress_snapshot(s, cfg).compressed_bytes for s in snaps
    )
    total = 0
    reference = None
    for i, snap in enumerate(snaps):
        result = tc.compress_snapshot(
            snap, cfg, reference=reference, snapshot_index=i
        )
        total += result.compressed_bytes
        reference = tc.decompress(result.blob, reference=reference)
    assert total < scratch
