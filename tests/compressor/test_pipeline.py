"""End-to-end tests for the SZCompressor pipeline."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import array_shapes, arrays

from repro.compressor import CompressionConfig, ErrorBoundMode, SZCompressor
from tests.conftest import assert_error_bounded, smooth_field

PREDICTORS = ["lorenzo", "interpolation", "regression"]


@pytest.fixture(scope="module")
def sz():
    return SZCompressor()


class TestAbsMode:
    @pytest.mark.parametrize("predictor", PREDICTORS)
    @pytest.mark.parametrize("shape", [(2000,), (40, 50), (16, 18, 20)])
    def test_roundtrip_bound(self, sz, predictor, shape):
        data = smooth_field(shape)
        eb = 1e-3
        cfg = CompressionConfig(predictor=predictor, error_bound=eb)
        result, recon = sz.roundtrip(data, cfg)
        assert recon.shape == data.shape
        assert recon.dtype == data.dtype
        assert_error_bounded(data, recon, eb)
        assert result.ratio > 1.0

    @pytest.mark.parametrize("predictor", PREDICTORS)
    def test_float64_input(self, sz, predictor):
        data = smooth_field((30, 30)).astype(np.float64)
        cfg = CompressionConfig(predictor=predictor, error_bound=1e-6)
        _, recon = sz.roundtrip(data, cfg)
        assert recon.dtype == np.float64
        assert np.max(np.abs(recon - data)) <= 1e-6 * (1 + 1e-9)

    def test_larger_bound_never_smaller_ratio(self, sz):
        data = smooth_field((48, 48))
        cfg_small = CompressionConfig(error_bound=1e-4)
        cfg_large = CompressionConfig(error_bound=1e-2)
        r_small = sz.compress(data, cfg_small)
        r_large = sz.compress(data, cfg_large)
        assert r_large.ratio >= r_small.ratio


class TestRelMode:
    def test_bound_scales_with_range(self, sz):
        data = smooth_field((40, 40)) * 1000
        cfg = CompressionConfig(
            mode=ErrorBoundMode.REL, error_bound=1e-4
        )
        _, recon = sz.roundtrip(data, cfg)
        abs_eb = 1e-4 * (float(data.max()) - float(data.min()))
        assert_error_bounded(data, recon, abs_eb)


class TestPwRelMode:
    def test_pointwise_relative_bound(self, sz):
        rng = np.random.default_rng(0)
        data = np.exp(rng.normal(0, 1, size=(30, 30))).astype(np.float32)
        cfg = CompressionConfig(
            mode=ErrorBoundMode.PW_REL, error_bound=1e-2
        )
        _, recon = sz.roundtrip(data, cfg)
        rel = np.abs(recon.astype(np.float64) / data - 1.0)
        assert np.max(rel) <= 1e-2 * (1 + 1e-4)

    def test_zeros_reconstruct_exactly(self, sz):
        data = smooth_field((20, 20))
        data[::3, ::4] = 0.0
        cfg = CompressionConfig(
            mode=ErrorBoundMode.PW_REL, error_bound=1e-2
        )
        _, recon = sz.roundtrip(data, cfg)
        assert np.all(recon[data == 0] == 0.0)

    def test_negative_values_keep_sign(self, sz):
        data = smooth_field((20, 20)) - 0.5
        data[data == 0] = 0.1
        cfg = CompressionConfig(
            mode=ErrorBoundMode.PW_REL, error_bound=1e-2
        )
        _, recon = sz.roundtrip(data, cfg)
        assert np.all(np.sign(recon) == np.sign(data))


class TestLosslessStages:
    @pytest.mark.parametrize("lossless", ["zstd_like", "gzip_like", "rle", None])
    def test_roundtrip_all_backends(self, sz, lossless):
        data = smooth_field((32, 32))
        cfg = CompressionConfig(error_bound=1e-2, lossless=lossless)
        _, recon = sz.roundtrip(data, cfg)
        assert_error_bounded(data, recon, 1e-2)

    def test_lossless_helps_at_high_bound(self, sz):
        # Compare the codes sections: at a high bound the Huffman output
        # is zero-run dominated and the dictionary stage must shrink it.
        data = smooth_field((128, 128))
        eb = float(data.max() - data.min()) * 0.8
        with_ll = sz.compress(
            data, CompressionConfig(error_bound=eb, lossless="zstd_like")
        )
        without = sz.compress(
            data, CompressionConfig(error_bound=eb, lossless=None)
        )
        assert with_ll.sizes.codes < without.sizes.codes


class TestResultAccounting:
    def test_sizes_are_consistent(self, sz):
        data = smooth_field((40, 40))
        result = sz.compress(data, CompressionConfig(error_bound=1e-3))
        assert result.compressed_bytes == len(result.blob)
        assert result.sizes.total == len(result.blob)
        assert result.bit_rate == pytest.approx(
            8 * len(result.blob) / data.size
        )
        assert 0 <= result.p0 <= 1

    def test_times_recorded(self, sz):
        data = smooth_field((40, 40))
        result = sz.compress(data, CompressionConfig(error_bound=1e-3))
        for stage in ("predict_quantize", "huffman", "serialize"):
            assert stage in result.times.seconds

    def test_huffman_bitrate_below_total(self, sz):
        data = smooth_field((40, 40))
        result = sz.compress(
            data, CompressionConfig(error_bound=1e-3, lossless=None)
        )
        assert result.huffman_bit_rate <= result.bit_rate


class TestContainerFormat:
    def test_bad_magic_rejected(self, sz):
        with pytest.raises(ValueError):
            sz.decompress(b"XXXX" + b"\x00" * 64)

    def test_decompress_is_pure_function_of_blob(self, sz):
        data = smooth_field((24, 24))
        result = sz.compress(data, CompressionConfig(error_bound=1e-3))
        a = sz.decompress(result.blob)
        b = sz.decompress(result.blob)
        np.testing.assert_array_equal(a, b)

    def test_header_round_trips_config(self, sz):
        data = smooth_field((24, 24))
        cfg = CompressionConfig(
            predictor="interpolation",
            mode=ErrorBoundMode.REL,
            error_bound=1e-3,
            lossless="rle",
        )
        result = sz.compress(data, cfg)
        header, _ = sz._disassemble(result.blob)
        restored = sz._config_from_header(header)
        assert restored == cfg


class TestPropertyBased:
    @given(
        arrays(
            np.float32,
            array_shapes(min_dims=1, max_dims=3, min_side=2, max_side=10),
            elements=st.floats(-1e4, 1e4, allow_nan=False, width=32),
        ),
        st.sampled_from(PREDICTORS),
        st.floats(1e-3, 10.0),
    )
    @settings(max_examples=40, deadline=None)
    def test_error_bound_invariant(self, data, predictor, eb):
        sz = SZCompressor()
        cfg = CompressionConfig(
            predictor=predictor, error_bound=eb, lossless=None
        )
        _, recon = sz.roundtrip(data, cfg)
        assert_error_bounded(data, recon, eb)
