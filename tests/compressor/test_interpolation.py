"""Tests for the multi-level interpolation predictor."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import array_shapes, arrays

from repro.compressor.predictors.interpolation import InterpolationPredictor
from tests.conftest import smooth_field


def roundtrip(data, eb, radius=32768, **kwargs):
    pred = InterpolationPredictor(**kwargs)
    out = pred.decompose(data, eb, radius)
    return pred.reconstruct(out, data.shape, eb), out


class TestRoundtrip:
    @pytest.mark.parametrize(
        "shape", [(100,), (33, 47), (17, 18, 19), (7, 8, 9, 10)]
    )
    def test_bound_holds(self, shape):
        data = smooth_field(shape).astype(np.float64)
        eb = 1e-3
        recon, _ = roundtrip(data, eb)
        assert np.max(np.abs(recon - data)) <= eb * (1 + 1e-9)

    def test_power_of_two_plus_one(self):
        data = smooth_field((65,)).astype(np.float64)
        recon, _ = roundtrip(data, 1e-4)
        assert np.max(np.abs(recon - data)) <= 1e-4 * (1 + 1e-9)

    def test_tiny_array(self):
        data = np.array([1.0, 2.0, 3.0])
        recon, _ = roundtrip(data, 1e-3)
        assert np.max(np.abs(recon - data)) <= 1e-3 * (1 + 1e-9)

    def test_outliers_roundtrip(self):
        data = smooth_field((40, 40)).astype(np.float64) * 100
        recon, out = roundtrip(data, 1e-4, radius=4)
        assert out.n_outliers > 0
        assert np.max(np.abs(recon - data)) <= 1e-4 * (1 + 1e-9)

    def test_anchor_payload_present(self):
        data = smooth_field((64, 64)).astype(np.float64)
        _, out = roundtrip(data, 1e-3)
        anchors = np.frombuffer(out.side_payload, dtype=np.float64)
        assert anchors.size >= 1
        assert out.meta["levels"] >= 1

    def test_max_level_caps_levels(self):
        data = smooth_field((256,)).astype(np.float64)
        pred = InterpolationPredictor(max_level=3)
        out = pred.decompose(data, 1e-3, 32768)
        assert out.meta["levels"] == 3

    def test_invalid_max_level(self):
        with pytest.raises(ValueError):
            InterpolationPredictor(max_level=0)

    @given(
        arrays(
            np.float64,
            array_shapes(min_dims=1, max_dims=3, min_side=2, max_side=14),
            elements=st.floats(-50, 50, allow_nan=False),
        ),
        st.floats(1e-4, 1.0),
    )
    @settings(max_examples=50, deadline=None)
    def test_bound_property(self, data, eb):
        recon, _ = roundtrip(data, eb)
        assert np.max(np.abs(recon - data)) <= eb * (1 + 1e-9)


class TestTraversalDeterminism:
    def test_codes_deterministic(self):
        data = smooth_field((30, 30)).astype(np.float64)
        pred = InterpolationPredictor()
        a = pred.decompose(data, 1e-3, 32768)
        b = pred.decompose(data, 1e-3, 32768)
        np.testing.assert_array_equal(a.codes, b.codes)

    def test_code_count_covers_non_anchor_points(self):
        data = smooth_field((33, 33)).astype(np.float64)
        pred = InterpolationPredictor()
        out = pred.decompose(data, 1e-3, 32768)
        anchors = np.frombuffer(out.side_payload, dtype=np.float64).size
        assert out.codes.size + anchors == data.size


class TestLevelErrors:
    def test_level_blocks_cover_all_sweeps(self):
        data = smooth_field((32, 32)).astype(np.float64)
        pred = InterpolationPredictor()
        blocks = pred.level_errors(data)
        total = sum(err.size for _, _, err in blocks)
        out = pred.decompose(data, 1e-3, 32768)
        assert total == out.codes.size

    def test_coarse_levels_have_larger_errors(self):
        data = smooth_field((128,)).astype(np.float64)
        pred = InterpolationPredictor()
        blocks = pred.level_errors(data)
        by_level: dict[int, list[float]] = {}
        for level, _, err in blocks:
            by_level.setdefault(level, []).append(float(np.std(err)))
        levels = sorted(by_level)
        coarse = np.mean(by_level[levels[-1]])
        fine = np.mean(by_level[levels[0]])
        assert coarse >= fine

    def test_sample_errors_rate(self):
        data = smooth_field((64, 64)).astype(np.float64)
        pred = InterpolationPredictor()
        sampled = pred.sample_errors(data, 0.1, np.random.default_rng(0))
        full = pred.prediction_errors(data)
        # per-level minimum of one sample inflates tiny levels slightly
        assert sampled.size <= full.size
        assert sampled.size >= 0.05 * full.size
        assert np.std(sampled) == pytest.approx(np.std(full), rel=0.5)
