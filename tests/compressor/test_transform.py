"""Tests for the PW_REL logarithmic transform."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays

from repro.compressor.transform import inverse_log_transform, log_transform


class TestLogTransform:
    def test_roundtrip_exact_without_quantization(self):
        rng = np.random.default_rng(0)
        data = rng.normal(0, 5, (12, 13))
        work, _, payload = log_transform(data)
        back = inverse_log_transform(work, data.shape, payload)
        np.testing.assert_allclose(back, data, rtol=1e-12)

    def test_zeros_restored_exactly(self):
        data = np.array([0.0, 1.0, -2.0, 0.0])
        work, meta, payload = log_transform(data)
        back = inverse_log_transform(work, data.shape, payload)
        assert back[0] == 0.0 and back[3] == 0.0
        assert meta["pw_rel"] is True

    def test_signs_preserved(self):
        data = np.array([-1.5, 2.5, -0.25])
        work, _, payload = log_transform(data)
        back = inverse_log_transform(work, data.shape, payload)
        np.testing.assert_array_equal(np.sign(back), np.sign(data))

    def test_work_is_log_magnitude(self):
        data = np.array([np.e, -np.e**2])
        work, _, _ = log_transform(data)
        np.testing.assert_allclose(work, [1.0, 2.0], rtol=1e-12)

    def test_zero_fill_is_median(self):
        data = np.array([0.0, 1.0, np.e, np.e**2])
        work, meta, _ = log_transform(data)
        assert meta["fill"] == pytest.approx(1.0)  # median of {0,1,2}
        assert work[0] == pytest.approx(1.0)

    def test_all_zero_input(self):
        data = np.zeros(5)
        work, meta, payload = log_transform(data)
        back = inverse_log_transform(work, data.shape, payload)
        np.testing.assert_array_equal(back, data)
        assert meta["fill"] == 0.0

    def test_error_bound_semantics(self):
        # |log x' - log x| <= log1p(eb) implies |x'/x - 1| <= eb.
        rng = np.random.default_rng(1)
        data = np.exp(rng.normal(0, 2, 1000))
        eb = 0.05
        work, _, payload = log_transform(data)
        noisy = work + rng.uniform(
            -np.log1p(eb), np.log1p(eb), work.shape
        )
        back = inverse_log_transform(noisy, data.shape, payload)
        assert np.max(np.abs(back / data - 1.0)) <= eb * (1 + 1e-9)

    @given(
        arrays(
            np.float64,
            st.integers(1, 64),
            elements=st.floats(-1e6, 1e6, allow_nan=False),
        )
    )
    @settings(max_examples=50)
    def test_roundtrip_property(self, data):
        work, _, payload = log_transform(data)
        back = inverse_log_transform(work, data.shape, payload)
        np.testing.assert_allclose(back, data, rtol=1e-9, atol=0)
