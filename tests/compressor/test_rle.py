"""Unit + property tests for the zero-run RLE codec."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.compressor.encoders.rle import (
    ZeroRunLengthEncoder,
    zero_run_lengths,
)


class TestZeroRunLengths:
    def test_basic(self):
        runs = zero_run_lengths(np.array([0, 0, 1, 0, 2, 0, 0, 0]))
        np.testing.assert_array_equal(runs, [2, 1, 3])

    def test_no_zeros(self):
        assert zero_run_lengths(np.array([1, 2, 3])).size == 0

    def test_all_zeros(self):
        np.testing.assert_array_equal(
            zero_run_lengths(np.zeros(7, dtype=np.int64)), [7]
        )

    def test_empty(self):
        assert zero_run_lengths(np.array([], dtype=np.int64)).size == 0

    def test_custom_zero_symbol(self):
        runs = zero_run_lengths(np.array([5, 5, 1, 5]), zero_symbol=5)
        np.testing.assert_array_equal(runs, [2, 1])

    def test_mean_run_length_matches_eq7(self):
        # Eq. 7: independent symbols with zero-probability p0 have mean
        # run length 1 / (1 - p0).
        rng = np.random.default_rng(0)
        p0 = 0.9
        stream = (rng.random(200_000) >= p0).astype(np.int64)
        runs = zero_run_lengths(stream)
        assert runs.mean() == pytest.approx(1.0 / (1.0 - p0), rel=0.05)


class TestRleRoundtrip:
    def test_basic_roundtrip(self):
        codec = ZeroRunLengthEncoder()
        stream = np.array([0, 0, 0, 4, -2, 0, 0, 9])
        tokens, _ = codec.encode(stream)
        np.testing.assert_array_equal(codec.decode(tokens), stream)

    def test_no_zero_passthrough(self):
        codec = ZeroRunLengthEncoder()
        stream = np.array([3, 1, 2])
        tokens, stats = codec.encode(stream)
        np.testing.assert_array_equal(tokens[1:], stream)  # [0] is marker
        assert stats.n_runs == 0
        np.testing.assert_array_equal(codec.decode(tokens), stream)

    def test_all_zeros(self):
        codec = ZeroRunLengthEncoder()
        stream = np.zeros(1000, dtype=np.int64)
        tokens, stats = codec.encode(stream)
        assert tokens.size == 3  # header + one (marker, length) pair
        assert stats.n_runs == 1
        np.testing.assert_array_equal(codec.decode(tokens), stream)

    def test_long_run_splitting(self):
        codec = ZeroRunLengthEncoder(run_field_bits=4)  # max run 15
        stream = np.zeros(40, dtype=np.int64)
        tokens, stats = codec.encode(stream)
        assert stats.n_runs == 3  # 15 + 15 + 10
        np.testing.assert_array_equal(codec.decode(tokens), stream)

    def test_positive_only_stream_with_ambiguous_lengths(self):
        # Run lengths may collide numerically with the marker value;
        # sequential decoding must still resolve them.
        codec = ZeroRunLengthEncoder()
        stream = np.concatenate(
            [np.full(5, 100), np.zeros(99, dtype=np.int64), np.full(3, 100)]
        )
        tokens, _ = codec.encode(stream)
        np.testing.assert_array_equal(codec.decode(tokens), stream)

    def test_empty(self):
        codec = ZeroRunLengthEncoder()
        tokens, stats = codec.encode(np.array([], dtype=np.int64))
        assert tokens.size == 0
        assert stats.n_input == 0
        assert codec.decode(tokens).size == 0

    def test_invalid_field_bits(self):
        with pytest.raises(ValueError):
            ZeroRunLengthEncoder(run_field_bits=1)

    def test_token_reduction_reported(self):
        codec = ZeroRunLengthEncoder()
        stream = np.zeros(100, dtype=np.int64)
        stream[50] = 7
        _, stats = codec.encode(stream)
        assert stats.token_reduction > 10

    @given(
        st.lists(
            st.integers(-3, 3), min_size=0, max_size=300
        )
    )
    @settings(max_examples=100)
    def test_roundtrip_random(self, values):
        codec = ZeroRunLengthEncoder()
        stream = np.array(values, dtype=np.int64)
        tokens, _ = codec.encode(stream)
        np.testing.assert_array_equal(codec.decode(tokens), stream)

    @given(st.integers(2, 10), st.lists(st.integers(0, 1), min_size=1, max_size=200))
    @settings(max_examples=50)
    def test_roundtrip_small_fields(self, bits, values):
        codec = ZeroRunLengthEncoder(run_field_bits=bits)
        stream = np.array(values, dtype=np.int64)
        tokens, _ = codec.encode(stream)
        np.testing.assert_array_equal(codec.decode(tokens), stream)
