"""Container layer: flat/chunked/tiled formats and derived accounting."""

import io

import numpy as np
import pytest

from repro.compressor import container
from repro.compressor import CompressionConfig, SZCompressor
from repro.compressor.container import TiledReader, TiledWriter, TileRecord
from tests.conftest import smooth_field


class TestFlat:
    def test_write_read_roundtrip(self):
        header = {"shape": [3], "dtype": "<f8", "x": 1}
        sections = [b"codes", b"", b"vals", b"side", b"signs!"]
        blob, header_len = container.write_flat(
            header, sections, container.VERSION_SINGLE
        )
        back_header, back_sections = container.read_flat(blob)
        assert back_header.pop("container_version") == 2
        assert back_header == header
        assert back_sections == sections
        assert header_len > 0

    def test_blob_size_matches_derived_overhead(self):
        header = {"k": "v"}
        sections = [b"a" * 10, b"b" * 3, b"", b"c", b"dd"]
        blob, header_len = container.write_flat(
            header, sections, container.VERSION_CHUNKED
        )
        expected = container.flat_overhead(header_len) + sum(
            len(s) for s in sections
        )
        assert len(blob) == expected

    def test_bad_magic_rejected(self):
        with pytest.raises(ValueError):
            container.read_flat(b"NOPE" + b"\x00" * 32)

    def test_tiled_version_rejected_by_flat_reader(self):
        header = {"shape": [1], "dtype": "<f8"}
        sink = io.BytesIO()
        with TiledWriter(sink, header):
            pass
        with pytest.raises(ValueError):
            container.read_flat(sink.getvalue())

    def test_non_flat_version_rejected_by_writer(self):
        with pytest.raises(ValueError):
            container.write_flat({}, [b""] * 5, container.VERSION_TILED)


class TestStageSizesDerived:
    """StageSizes.total must equal the real container size, with the
    overhead derived from the writer's layout constants."""

    @pytest.mark.parametrize(
        "config",
        [
            CompressionConfig(error_bound=1e-3),
            CompressionConfig(error_bound=1e-3, lossless=None),
            CompressionConfig(error_bound=1e-3, chunk_size=300),
            CompressionConfig(
                predictor="regression", error_bound=1e-2
            ),
        ],
    )
    def test_total_matches_blob(self, config):
        data = smooth_field((40, 40))
        result = SZCompressor().compress(data, config)
        assert result.sizes.total == len(result.blob)

    def test_total_matches_for_trivial_containers(self):
        result = SZCompressor().compress(
            np.zeros((0, 2)), CompressionConfig()
        )
        assert result.sizes.total == len(result.blob)


class TestChunkedFraming:
    def test_roundtrip(self):
        payloads = [b"one", b"", b"three" * 100]
        framed = container.write_chunked_codes(payloads)
        assert container.read_chunked_codes(framed) == payloads

    @pytest.mark.parametrize(
        "corrupt",
        [
            b"",
            b"\x00\x00\x00\x00",  # zero chunks
            b"\x02\x00\x00\x00" + b"\x00" * 8,  # truncated table
        ],
    )
    def test_corrupt_rejected(self, corrupt):
        with pytest.raises(ValueError):
            container.read_chunked_codes(corrupt)

    def test_trailing_garbage_rejected(self):
        framed = container.write_chunked_codes([b"abc"]) + b"junk"
        with pytest.raises(ValueError):
            container.read_chunked_codes(framed)


class TestTiledFormat:
    def _write(self, sink):
        header = {"shape": [4, 4], "dtype": "<f4", "tile_shape": [2, 4]}
        with TiledWriter(sink, header) as writer:
            writer.add_tile((0, 0), (2, 4), b"payload-a")
            writer.add_tile((2, 0), (4, 4), b"payload-bb")
        return header

    def test_writer_reader_roundtrip_bytes(self):
        sink = io.BytesIO()
        header = self._write(sink)
        reader = TiledReader(sink.getvalue())
        assert reader.header["shape"] == header["shape"]
        assert reader.header["container_version"] == 4
        assert [t.size for t in reader.tiles] == [9, 10]
        assert reader.read_tile(reader.tiles[0]) == b"payload-a"
        assert reader.read_tile(reader.tiles[1]) == b"payload-bb"

    def test_writer_reader_roundtrip_file(self, tmp_path):
        path = tmp_path / "t.rqsz"
        with open(path, "wb") as fh:
            self._write(fh)
        with TiledReader(str(path)) as reader:
            assert reader.read_tile(reader.tiles[1]) == b"payload-bb"

    def test_tile_record_geometry(self):
        record = TileRecord(offset=0, size=1, start=(2, 0), stop=(4, 3))
        assert record.shape == (2, 3)
        assert TileRecord.from_json(record.to_json()) == record

    def test_add_after_finish_rejected(self):
        sink = io.BytesIO()
        writer = TiledWriter(sink, {"shape": [1]})
        writer.finish()
        with pytest.raises(ValueError):
            writer.add_tile((0,), (1,), b"x")

    def test_finish_total_matches_container_size(self):
        sink = io.BytesIO()
        writer = TiledWriter(sink, {"shape": [2]})
        writer.add_tile((0,), (2,), b"xy")
        total = writer.finish()
        assert total == len(sink.getvalue())

    def test_flat_blob_rejected_by_tiled_reader(self):
        blob = SZCompressor().compress(
            smooth_field((10,)), CompressionConfig()
        ).blob
        with pytest.raises(ValueError):
            TiledReader(blob)

    def test_truncated_rejected(self):
        sink = io.BytesIO()
        self._write(sink)
        blob = sink.getvalue()
        with pytest.raises(ValueError):
            TiledReader(blob[: len(blob) - 6])
        with pytest.raises(ValueError):
            TiledReader(blob[:10])

    def test_container_version_helper(self):
        sink = io.BytesIO()
        self._write(sink)
        assert (
            container.container_version(sink.getvalue())
            == container.VERSION_TILED
        )

    def _write_adaptive(self, sink):
        header = {"shape": [4, 4], "dtype": "<f4", "adaptive": True}
        cfg_a = {"predictor": "lorenzo", "error_bound": 0.5,
                 "quant_radius": 256}
        cfg_b = {"predictor": "interpolation", "error_bound": 2.0,
                 "quant_radius": 1024}
        with TiledWriter(
            sink, header, version=container.VERSION_ADAPTIVE
        ) as writer:
            writer.add_tile((0, 0), (2, 4), b"payload-a", config=cfg_a)
            writer.add_tile((2, 0), (4, 4), b"payload-bb", config=cfg_b)
            writer.add_tile((4, 0), (6, 4), b"payload-c", config=cfg_a)
        return cfg_a, cfg_b

    def test_v5_palette_roundtrip(self):
        sink = io.BytesIO()
        cfg_a, cfg_b = self._write_adaptive(sink)
        blob = sink.getvalue()
        assert container.container_version(blob) == 5
        reader = TiledReader(blob)
        assert reader.version == container.VERSION_ADAPTIVE
        assert [t.config for t in reader.tiles] == [cfg_a, cfg_b, cfg_a]
        # two distinct configs palettized once despite three tiles
        # (checksummed containers carry a 4-byte TOC crc before the
        # trailing length word)
        import json as _json

        toc_len = int.from_bytes(blob[-8:], "little")
        toc = _json.loads(blob[-12 - toc_len : -12])
        assert len(toc["configs"]) == 2
        assert toc["tile_configs"] == [0, 1, 0]
        assert len(toc["tile_crcs"]) == 3

    @pytest.mark.parametrize("keep", [1, 0])
    def test_v5_mismatched_tile_configs_rejected(self, keep):
        # a tile_configs array shorter than tiles (including empty,
        # which must not fall back to the no-configs path) must not
        # silently drop trailing tiles
        import json as _json

        from repro.compressor.integrity import checksum

        sink = io.BytesIO()
        self._write_adaptive(sink)
        blob = sink.getvalue()
        toc_len = int.from_bytes(blob[-8:], "little")
        toc = _json.loads(blob[-12 - toc_len : -12])
        toc["tile_configs"] = toc["tile_configs"][:keep]
        bad_toc = _json.dumps(toc).encode()
        # recompute the TOC crc so structural validation (not the
        # checksum) is what rejects the mismatched tile_configs
        bad = (
            blob[: -12 - toc_len]
            + bad_toc
            + checksum(bad_toc).to_bytes(4, "little")
            + len(bad_toc).to_bytes(8, "little")
        )
        with pytest.raises(ValueError, match="corrupt tile TOC"):
            TiledReader(bad)

    def test_invalid_writer_version_rejected(self):
        with pytest.raises(ValueError):
            TiledWriter(io.BytesIO(), {"shape": [1]}, version=3)
