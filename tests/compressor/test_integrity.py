"""Container integrity: checksums detect corruption, never lie.

The detected-or-correct guarantee starts here: a checksummed container
either round-trips byte-identically or raises a structured error naming
what failed.  Containers without checksums (legacy blobs) verify as
*unknown* — never as failures.
"""

import io

import numpy as np
import pytest

from repro.compressor import CompressionConfig, TiledCompressor
from repro.compressor.container import (
    ContainerFormatError,
    TileCorruptError,
    TiledReader,
    TiledWriter,
)
from repro.compressor.inspect import describe_container
from repro.compressor.integrity import (
    CHECKSUM_ALGORITHM,
    checksum,
    checksum_named,
    supported_algorithms,
)
from tests.conftest import smooth_field


def _tiled_blob(note: str = "aaaaaaaa") -> bytes:
    sink = io.BytesIO()
    header = {"shape": [4, 4], "dtype": "<f4", "note": note}
    with TiledWriter(sink, header) as writer:
        writer.add_tile((0, 0), (2, 4), b"payload-a")
        writer.add_tile((2, 0), (4, 4), b"payload-bb")
    return sink.getvalue()


class TestAlgorithms:
    def test_default_algorithm_is_supported(self):
        assert CHECKSUM_ALGORITHM in supported_algorithms()

    def test_checksum_deterministic(self):
        assert checksum(b"abc") == checksum(b"abc")
        assert checksum(b"abc") != checksum(b"abd")
        assert 0 <= checksum(b"") < 2**32

    def test_unknown_algorithm_returns_none(self):
        assert checksum_named("xxh3-is-not-a-thing", b"abc") is None
        assert checksum_named(CHECKSUM_ALGORITHM, b"abc") == checksum(
            b"abc"
        )


class TestWriterReaderChecksums:
    def test_fresh_container_verifies(self):
        blob = _tiled_blob()
        reader = TiledReader(blob)
        assert reader.checksum_algorithm == CHECKSUM_ALGORITHM
        assert reader.checksum_state == "verified"
        assert all(t.crc is not None for t in reader.tiles)
        assert reader.read_tile(reader.tiles[0]) == b"payload-a"
        assert reader.verify_tiles() == "verified"

    def test_checksums_off_reads_as_unknown(self):
        sink = io.BytesIO()
        with TiledWriter(
            sink, {"shape": [2], "dtype": "<f4"}, checksums=False
        ) as writer:
            writer.add_tile((0,), (2,), b"xy")
        reader = TiledReader(sink.getvalue())
        assert reader.checksum_algorithm is None
        assert reader.checksum_state == "unknown"
        assert reader.verify_tiles() == "unknown"
        assert reader.read_tile(reader.tiles[0]) == b"xy"

    def test_flipped_tile_byte_raises_tile_corrupt(self):
        blob = bytearray(_tiled_blob())
        reader = TiledReader(bytes(blob))
        record = reader.tiles[1]
        blob[record.offset] ^= 0x40
        corrupt = TiledReader(bytes(blob))  # header+TOC still intact
        assert corrupt.checksum_state == "verified"
        with pytest.raises(TileCorruptError) as excinfo:
            corrupt.read_tile(corrupt.tiles[1])
        err = excinfo.value
        assert err.tile_index == 1
        assert err.offset == record.offset
        assert err.version == corrupt.version
        assert "tile 1" in str(err)
        # the sibling tile is untouched and still readable
        assert corrupt.read_tile(corrupt.tiles[0]) == b"payload-a"

    def test_verify_false_returns_damaged_bytes(self):
        blob = bytearray(_tiled_blob())
        record = TiledReader(bytes(blob)).tiles[0]
        blob[record.offset] ^= 0x01
        reader = TiledReader(bytes(blob))
        raw = reader.read_tile(reader.tiles[0], verify=False)
        assert len(raw) == record.size

    def test_verify_tiles_names_first_corrupt_tile(self):
        blob = bytearray(_tiled_blob())
        record = TiledReader(bytes(blob)).tiles[0]
        blob[record.offset + 2] ^= 0x80
        with pytest.raises(TileCorruptError) as excinfo:
            TiledReader(bytes(blob)).verify_tiles()
        assert excinfo.value.tile_index == 0

    def test_flipped_toc_byte_rejected_at_open(self):
        blob = bytearray(_tiled_blob())
        toc_len = int.from_bytes(blob[-8:], "little")
        # flip inside the TOC JSON, between the tiles and the trailer
        blob[-12 - toc_len + 5] ^= 0x01
        with pytest.raises(
            ContainerFormatError, match="corrupt tile TOC"
        ):
            TiledReader(bytes(blob))

    def test_flipped_header_byte_rejected_at_open(self):
        # flip inside a header string value so the JSON still parses
        # and only the header checksum can catch it
        blob = _tiled_blob(note="aaaaaaaa")
        assert blob.count(b"aaaaaaaa") == 1
        bad = blob.replace(b"aaaaaaaa", b"aaabaaaa")
        with pytest.raises(
            ContainerFormatError, match="corrupt container header"
        ):
            TiledReader(bad)

    def test_tile_corrupt_error_is_value_error(self):
        # existing handlers catch ValueError; the structured errors
        # must flow through them unchanged
        assert issubclass(ContainerFormatError, ValueError)
        assert issubclass(TileCorruptError, ContainerFormatError)


class TestTruncation:
    """Truncated/garbage containers give clean structured errors."""

    @pytest.mark.parametrize("keep", [0, 3, 5, 10, 40])
    def test_truncated_tiled_container(self, keep):
        blob = _tiled_blob()
        with pytest.raises(ContainerFormatError):
            TiledReader(blob[:keep])

    def test_truncated_tail(self):
        blob = _tiled_blob()
        with pytest.raises(ContainerFormatError):
            TiledReader(blob[:-3])

    def test_garbage_rejected(self):
        with pytest.raises(ContainerFormatError):
            TiledReader(b"\x00" * 64)

    def test_garbage_inspect_rejected(self):
        with pytest.raises(ValueError):
            describe_container(b"RQSZ\x04" + b"\xff" * 9)


class TestEndToEnd:
    def test_compressed_array_verifies_and_roundtrips(self):
        data = smooth_field((16, 16))
        config = CompressionConfig(error_bound=1e-3, tile_shape=(8, 8))
        compressor = TiledCompressor()
        result = compressor.compress(data, config)
        reader = TiledReader(result.blob)
        assert reader.checksum_state == "verified"
        assert reader.verify_tiles() == "verified"
        back = compressor.decompress(result.blob)
        assert np.max(np.abs(back - data)) <= 1e-3

    def test_bit_flip_in_payload_fails_decode(self):
        data = smooth_field((16, 16))
        config = CompressionConfig(error_bound=1e-3, tile_shape=(8, 8))
        compressor = TiledCompressor()
        blob = bytearray(compressor.compress(data, config).blob)
        record = TiledReader(bytes(blob)).tiles[0]
        blob[record.offset + record.size // 2] ^= 0x10
        with pytest.raises(TileCorruptError):
            compressor.decompress(bytes(blob))

    def test_describe_container_reports_integrity(self):
        blob = _tiled_blob()
        info = describe_container(blob)
        assert info["integrity"] == {
            "checksums": CHECKSUM_ALGORITHM,
            "state": "verified",
            "deep": False,
        }
        deep = describe_container(blob, verify=True)
        assert deep["integrity"]["state"] == "verified"
        assert deep["integrity"]["deep"] is True

    def test_describe_deep_verify_catches_payload_flip(self):
        blob = bytearray(_tiled_blob())
        record = TiledReader(bytes(blob)).tiles[0]
        blob[record.offset] ^= 0x02
        # shallow describe is header+TOC only and does not notice
        assert (
            describe_container(bytes(blob))["integrity"]["state"]
            == "verified"
        )
        with pytest.raises(TileCorruptError):
            describe_container(bytes(blob), verify=True)

    def test_checksum_overhead_below_one_percent(self):
        data = smooth_field((128, 128))
        config = CompressionConfig(error_bound=1e-5, tile_shape=(32, 32))
        compressor = TiledCompressor()
        with_sums = len(compressor.compress(data, config).blob)
        reader = TiledReader(compressor.compress(data, config).blob)
        assert reader.checksum_state == "verified"
        # rebuild the same container without checksums for comparison
        plain = io.BytesIO()
        with TiledWriter(
            plain,
            {
                k: v
                for k, v in reader.header.items()
                if k not in ("checksums", "container_version")
            },
            version=reader.version,
            checksums=False,
        ) as writer:
            for t in reader.tiles:
                writer.add_tile(
                    t.start, t.stop, reader.read_tile(t), config=t.config
                )
        without = len(plain.getvalue())
        assert (with_sums - without) / without <= 0.01
