"""Tests for CompressionConfig and error-bound modes."""

import numpy as np
import pytest

from repro.compressor.config import CompressionConfig, ErrorBoundMode


class TestValidation:
    def test_defaults_valid(self):
        cfg = CompressionConfig()
        assert cfg.predictor == "lorenzo"
        assert cfg.mode is ErrorBoundMode.ABS

    def test_unknown_predictor(self):
        with pytest.raises(ValueError):
            CompressionConfig(predictor="spline")

    def test_unknown_lossless(self):
        with pytest.raises(ValueError):
            CompressionConfig(lossless="zstd")

    def test_nonpositive_bound(self):
        with pytest.raises(ValueError):
            CompressionConfig(error_bound=0.0)

    def test_mode_type_checked(self):
        with pytest.raises(TypeError):
            CompressionConfig(mode="abs")

    def test_invalid_lorenzo_levels(self):
        with pytest.raises(ValueError):
            CompressionConfig(lorenzo_levels=3)

    def test_invalid_regression_block(self):
        with pytest.raises(ValueError):
            CompressionConfig(regression_block=1)

    def test_invalid_radius(self):
        with pytest.raises(ValueError):
            CompressionConfig(quant_radius=1)


class TestAbsoluteBound:
    def test_abs_mode_passthrough(self):
        cfg = CompressionConfig(mode=ErrorBoundMode.ABS, error_bound=0.5)
        assert cfg.absolute_bound(np.array([0.0, 100.0])) == 0.5

    def test_rel_mode_scales_by_range(self):
        cfg = CompressionConfig(mode=ErrorBoundMode.REL, error_bound=1e-2)
        data = np.array([-5.0, 15.0])
        assert cfg.absolute_bound(data) == pytest.approx(0.2)

    def test_pw_rel_log_bound(self):
        cfg = CompressionConfig(mode=ErrorBoundMode.PW_REL, error_bound=0.1)
        bound = cfg.absolute_bound(np.array([1.0, 2.0]))
        assert bound == pytest.approx(np.log1p(0.1))


class TestCopies:
    def test_with_error_bound(self):
        cfg = CompressionConfig(error_bound=1.0)
        new = cfg.with_error_bound(2.0)
        assert new.error_bound == 2.0
        assert cfg.error_bound == 1.0
        assert new.predictor == cfg.predictor

    def test_with_predictor(self):
        cfg = CompressionConfig()
        new = cfg.with_predictor("interpolation")
        assert new.predictor == "interpolation"
        assert cfg.predictor == "lorenzo"

    def test_frozen(self):
        cfg = CompressionConfig()
        with pytest.raises(Exception):
            cfg.error_bound = 5.0  # type: ignore[misc]
