"""Unit tests for the bit-level I/O layer."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.compressor.bitstream import (
    BitReader,
    BitWriter,
    bits_to_bytes,
    pack_codes,
)


class TestPackCodes:
    def test_single_code(self):
        payload, nbits = pack_codes(np.array([0b101]), np.array([3]))
        assert nbits == 3
        assert payload[0] >> 5 == 0b101

    def test_empty(self):
        payload, nbits = pack_codes(np.array([], dtype=np.uint64), np.array([]))
        assert payload == b""
        assert nbits == 0

    def test_concatenation_order(self):
        # 1-bit '1' then 2-bit '01' -> bits 101 -> byte 1010_0000
        payload, nbits = pack_codes(np.array([1, 1]), np.array([1, 2]))
        assert nbits == 3
        assert payload[0] == 0b10100000

    def test_mismatched_shapes_raise(self):
        with pytest.raises(ValueError):
            pack_codes(np.array([1]), np.array([1, 2]))

    def test_overlong_code_raises(self):
        with pytest.raises(ValueError):
            pack_codes(np.array([1]), np.array([60]))

    @given(
        st.lists(
            st.tuples(st.integers(1, 20), st.integers(0, 2**20 - 1)),
            min_size=1,
            max_size=64,
        )
    )
    def test_total_bits_matches(self, items):
        lengths = np.array([ln for ln, _ in items])
        codes = np.array(
            [v & ((1 << ln) - 1) for ln, v in items], dtype=np.uint64
        )
        payload, nbits = pack_codes(codes, lengths)
        assert nbits == lengths.sum()
        assert len(payload) == (nbits + 7) // 8


class TestBitWriterReader:
    def test_roundtrip_scalar_fields(self):
        w = BitWriter()
        w.write(5, 4)
        w.write(1023, 10)
        w.write(0, 1)
        r = BitReader(w.getvalue(), nbits=w.nbits)
        assert r.read(4) == 5
        assert r.read(10) == 1023
        assert r.read(1) == 0

    def test_roundtrip_array(self):
        w = BitWriter()
        values = np.arange(17, dtype=np.uint64)
        w.write_array(values, 5)
        r = BitReader(w.getvalue())
        out = r.read_array(17, 5)
        np.testing.assert_array_equal(out, values)

    def test_write_value_too_large_raises(self):
        with pytest.raises(ValueError):
            BitWriter().write(8, 3)

    def test_write_negative_raises(self):
        with pytest.raises(ValueError):
            BitWriter().write(-1, 4)

    def test_read_past_end_raises(self):
        r = BitReader(b"\x00")
        with pytest.raises(EOFError):
            r.read(9)

    def test_read_array_past_end_raises(self):
        r = BitReader(b"\x00")
        with pytest.raises(EOFError):
            r.read_array(3, 4)

    def test_nbits_truncation(self):
        r = BitReader(b"\xff\xff", nbits=5)
        assert r.nbits == 5

    def test_nbits_exceeding_payload_raises(self):
        with pytest.raises(ValueError):
            BitReader(b"\xff", nbits=9)

    @given(st.lists(st.integers(0, 2**16 - 1), min_size=1, max_size=50))
    def test_array_roundtrip_random(self, values):
        w = BitWriter()
        w.write_array(np.array(values, dtype=np.uint64), 16)
        r = BitReader(w.getvalue())
        np.testing.assert_array_equal(
            r.read_array(len(values), 16), values
        )


class TestWindow16:
    def test_window_values(self):
        # bits: 1010 1010 (one byte)
        r = BitReader(b"\xaa")
        window = r.window16()
        # window[0] packs bits 0..15: 1010101000000000
        assert window[0] == 0b1010101000000000
        assert window[1] == 0b0101010000000000

    def test_window_length(self):
        r = BitReader(b"\x00\x00")
        assert r.window16().size == 17  # nbits + 1


class TestBitsToBytes:
    def test_padding(self):
        out = bits_to_bytes(np.array([1, 1, 1], dtype=np.uint8))
        assert out == b"\xe0"
