"""Unit tests for the lossless backends (zstd_like / gzip_like / rle)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.compressor.encoders.lossless import (
    LOSSLESS_BACKENDS,
    get_lossless_backend,
)


@pytest.fixture(params=LOSSLESS_BACKENDS)
def backend(request):
    return get_lossless_backend(request.param)


class TestBackends:
    def test_unknown_backend_raises(self):
        with pytest.raises(ValueError):
            get_lossless_backend("zstd")

    def test_roundtrip_text(self, backend):
        data = b"the quick brown fox " * 50
        assert backend.decompress(backend.compress(data)) == data

    def test_roundtrip_zero_dominated(self, backend):
        data = b"\x00" * 5000 + b"\x01\x02" + b"\x00" * 3000
        out = backend.compress(data)
        assert len(out) < len(data) // 5
        assert backend.decompress(out) == data

    def test_incompressible_uses_raw_escape(self, backend):
        rng = np.random.default_rng(0)
        data = rng.integers(0, 256, size=512, dtype=np.uint8).tobytes()
        out = backend.compress(data)
        assert len(out) <= len(data) + 1
        assert backend.decompress(out) == data

    def test_empty_payload_raises(self, backend):
        with pytest.raises(ValueError):
            backend.decompress(b"")

    def test_unknown_method_byte_raises(self, backend):
        with pytest.raises(ValueError):
            backend.decompress(b"\x07payload")

    @given(st.binary(min_size=0, max_size=1000))
    @settings(max_examples=30, deadline=None)
    def test_roundtrip_random_zstd_like(self, data):
        backend = get_lossless_backend("zstd_like")
        assert backend.decompress(backend.compress(data)) == data

    @given(st.binary(min_size=0, max_size=1000))
    @settings(max_examples=30, deadline=None)
    def test_roundtrip_random_rle(self, data):
        backend = get_lossless_backend("rle")
        assert backend.decompress(backend.compress(data)) == data


class TestBackendOrdering:
    def test_zstd_like_at_least_as_good_as_rle_on_mixed_data(self):
        # Dictionary coding should dominate plain zero-RLE when there is
        # non-zero repetition to exploit.
        data = (b"abcdefgh" * 200) + b"\x00" * 500
        zstd = get_lossless_backend("zstd_like").compress(data)
        rle = get_lossless_backend("rle").compress(data)
        assert len(zstd) <= len(rle)
