"""Tests for the Elias-gamma fields of the bitstream layer."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.compressor.bitstream import BitReader, BitWriter


class TestEliasGamma:
    def test_one_is_single_bit(self):
        w = BitWriter()
        w.write_gamma(1)
        assert w.nbits == 1
        assert BitReader(w.getvalue(), nbits=1).read_gamma() == 1

    def test_known_codes(self):
        # gamma(2) = 010, gamma(3) = 011, gamma(4) = 00100
        for value, bits in ((2, 3), (3, 3), (4, 5), (7, 5), (8, 7)):
            w = BitWriter()
            w.write_gamma(value)
            assert w.nbits == bits, value
            assert (
                BitReader(w.getvalue(), nbits=w.nbits).read_gamma()
                == value
            )

    def test_zero_rejected(self):
        with pytest.raises(ValueError):
            BitWriter().write_gamma(0)

    def test_sequence_roundtrip(self):
        values = [1, 1, 5, 2, 100, 1, 65536, 3]
        w = BitWriter()
        for v in values:
            w.write_gamma(v)
        r = BitReader(w.getvalue(), nbits=w.nbits)
        assert [r.read_gamma() for _ in values] == values

    def test_truncated_stream_raises(self):
        w = BitWriter()
        w.write_gamma(4)  # 5 bits
        r = BitReader(w.getvalue(), nbits=3)
        with pytest.raises(EOFError):
            r.read_gamma()

    @given(st.lists(st.integers(1, 2**30), min_size=1, max_size=100))
    @settings(max_examples=100)
    def test_roundtrip_property(self, values):
        w = BitWriter()
        for v in values:
            w.write_gamma(v)
        r = BitReader(w.getvalue(), nbits=w.nbits)
        assert [r.read_gamma() for _ in values] == values

    def test_interleaved_with_fixed_fields(self):
        w = BitWriter()
        w.write(5, 4)
        w.write_gamma(9)
        w.write(2, 3)
        r = BitReader(w.getvalue(), nbits=w.nbits)
        assert r.read(4) == 5
        assert r.read_gamma() == 9
        assert r.read(3) == 2
