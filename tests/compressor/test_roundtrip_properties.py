"""Randomized round-trip properties over the full config space.

Each seed expands deterministically (``tests/proptest.py``) into one
compression scenario — dtype, prime-dimension shape of rank 0..4, bound
mode, predictor, lossless backend, chunking, tiling, adaptivity — and
asserts the round-trip bound, dtype/shape preservation, flat-vs-tiled
decode equivalence and region-decode consistency.

Reproduce a reported failure with ``PROPTEST_SEED=<seed>``; widen the
sweep with ``PROPTEST_COUNT=<n>`` (tier-1 runs the first 48 seeds).
"""

import os

import pytest

from tests.proptest import run_seed

if os.environ.get("PROPTEST_SEED"):
    SEEDS = [int(os.environ["PROPTEST_SEED"])]
else:
    SEEDS = list(range(int(os.environ.get("PROPTEST_COUNT", "48"))))


@pytest.mark.parametrize("seed", SEEDS)
def test_roundtrip_properties(seed):
    run_seed(seed)
