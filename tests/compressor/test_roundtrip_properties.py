"""Randomized round-trip properties over the full config space.

Each seed expands deterministically (``tests/proptest.py``) into one
compression scenario — dtype, prime-dimension shape of rank 0..4, bound
mode, predictor, lossless backend, chunking, tiling, adaptivity — and
asserts the round-trip bound, dtype/shape preservation, flat-vs-tiled
decode equivalence and region-decode consistency.

Adaptive cases additionally sweep the planner's fit-reuse spectrum
(``fit_clusters`` of None/0/1/4/12) and assert the planner-equivalence
properties: clustered and cache-replayed plans honour every per-tile
bound, meet the aggregate PSNR target, and decode identically to the
fresh plan's container.

Reproduce a reported failure with ``PROPTEST_SEED=<seed>``; widen the
sweep with ``PROPTEST_COUNT=<n>`` (tier-1 runs the first 72 seeds).
"""

import os

import pytest

from tests.proptest import run_seed

if os.environ.get("PROPTEST_SEED"):
    SEEDS = [int(os.environ["PROPTEST_SEED"])]
else:
    SEEDS = list(range(int(os.environ.get("PROPTEST_COUNT", "72"))))


@pytest.mark.parametrize("seed", SEEDS)
def test_roundtrip_properties(seed):
    run_seed(seed)
