"""Pipeline coverage for order-2 Lorenzo and 4-D inputs."""

import numpy as np
import pytest

from repro.compressor import CompressionConfig, SZCompressor
from tests.conftest import assert_error_bounded, smooth_field


@pytest.fixture(scope="module")
def sz():
    return SZCompressor()


class TestOrder2Lorenzo:
    def test_roundtrip_bound(self, sz):
        data = smooth_field((40, 40))
        cfg = CompressionConfig(
            predictor="lorenzo", lorenzo_levels=2, error_bound=1e-3
        )
        _, recon = sz.roundtrip(data, cfg)
        assert_error_bounded(data, recon, 1e-3)

    def test_order2_helps_on_linear_trends(self, sz):
        # In 1-D, order-1 Lorenzo turns a linear ramp into a constant
        # nonzero slope code; order-2 annihilates it.
        data = np.linspace(0, 1000, 8192).astype(np.float32)
        r1 = sz.compress(
            data,
            CompressionConfig(predictor="lorenzo", error_bound=1e-3),
        )
        r2 = sz.compress(
            data,
            CompressionConfig(
                predictor="lorenzo", lorenzo_levels=2, error_bound=1e-3
            ),
        )
        assert r2.p0 > r1.p0

    def test_header_records_order(self, sz):
        data = smooth_field((20, 20))
        cfg = CompressionConfig(
            predictor="lorenzo", lorenzo_levels=2, error_bound=1e-2
        )
        result = sz.compress(data, cfg)
        header, _ = sz._disassemble(result.blob)
        assert header["lorenzo_levels"] == 2
        assert header["predictor_meta"]["order"] == 2


class TestFourDimensional:
    @pytest.mark.parametrize("predictor", ["lorenzo", "interpolation"])
    def test_roundtrip_4d(self, sz, predictor):
        data = smooth_field((6, 7, 8, 9))
        cfg = CompressionConfig(predictor=predictor, error_bound=1e-3)
        _, recon = sz.roundtrip(data, cfg)
        assert_error_bounded(data, recon, 1e-3)

    def test_exafel_like_roundtrip(self, sz):
        from repro.datasets import photon_events_4d

        data = photon_events_4d((2, 3, 24, 24), seed=0)
        eb = float(data.max() - data.min()) * 1e-3
        _, recon = sz.roundtrip(
            data, CompressionConfig(error_bound=eb)
        )
        assert_error_bounded(data, recon, eb)
