"""Unit tests for repro.utils.tables."""

import pytest

from repro.utils.tables import format_table


class TestFormatTable:
    def test_basic_layout(self):
        out = format_table(["a", "b"], [[1, 2], [3, 4]])
        lines = out.splitlines()
        assert lines[0].split() == ["a", "b"]
        assert "--" in lines[1] or "-" in lines[1]
        assert lines[2].split() == ["1", "2"]

    def test_title(self):
        out = format_table(["x"], [[1]], title="My Table")
        assert out.splitlines()[0] == "My Table"

    def test_float_formatting(self):
        out = format_table(["v"], [[1.23456]], float_spec=".2f")
        assert "1.23" in out
        assert "1.2345" not in out

    def test_row_length_mismatch_raises(self):
        with pytest.raises(ValueError):
            format_table(["a", "b"], [[1]])

    def test_column_alignment(self):
        out = format_table(["name", "v"], [["long-name", 1], ["x", 22]])
        lines = out.splitlines()
        # all rows equal width
        assert len(set(len(line) for line in lines[0:1])) == 1

    def test_empty_rows(self):
        out = format_table(["a"], [])
        assert len(out.splitlines()) == 2  # header + rule only
