"""Unit tests for repro.utils.stats."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.utils.stats import (
    entropy_bits,
    normalized_histogram,
    relative_std_error,
    safe_log2,
    value_range,
)


class TestValueRange:
    def test_simple(self):
        assert value_range(np.array([1.0, 3.0, 2.0])) == 2.0

    def test_constant_array(self):
        assert value_range(np.zeros(5)) == 0.0

    def test_negative_values(self):
        assert value_range(np.array([-4.0, 4.0])) == 8.0

    def test_empty_raises(self):
        with pytest.raises(ValueError):
            value_range(np.array([]))

    def test_multidimensional(self):
        data = np.arange(24.0).reshape(2, 3, 4)
        assert value_range(data) == 23.0


class TestSafeLog2:
    def test_positive(self):
        assert safe_log2(np.array([8.0]))[0] == 3.0

    def test_zero_maps_to_zero(self):
        assert safe_log2(np.array([0.0]))[0] == 0.0

    def test_negative_maps_to_zero(self):
        assert safe_log2(np.array([-1.0]))[0] == 0.0

    def test_mixed(self):
        out = safe_log2(np.array([0.5, 0.0, 2.0]))
        np.testing.assert_allclose(out, [-1.0, 0.0, 1.0])


class TestNormalizedHistogram:
    def test_probabilities_sum_to_one(self):
        symbols, probs = normalized_histogram(np.array([1, 1, 2, 3]))
        assert probs.sum() == pytest.approx(1.0)
        np.testing.assert_array_equal(symbols, [1, 2, 3])

    def test_sorted_symbols(self):
        symbols, _ = normalized_histogram(np.array([5, -2, 5, 0]))
        assert list(symbols) == [-2, 0, 5]

    def test_empty_raises(self):
        with pytest.raises(ValueError):
            normalized_histogram(np.array([], dtype=np.int64))

    @given(st.lists(st.integers(-100, 100), min_size=1, max_size=200))
    def test_probs_nonnegative_and_normalized(self, values):
        _, probs = normalized_histogram(np.array(values))
        assert np.all(probs > 0)
        assert probs.sum() == pytest.approx(1.0)


class TestEntropyBits:
    def test_uniform_two_symbols(self):
        assert entropy_bits(np.array([0.5, 0.5])) == pytest.approx(1.0)

    def test_deterministic(self):
        assert entropy_bits(np.array([1.0])) == pytest.approx(0.0)

    def test_empty(self):
        assert entropy_bits(np.array([])) == 0.0

    def test_uniform_n_symbols(self):
        n = 16
        p = np.full(n, 1.0 / n)
        assert entropy_bits(p) == pytest.approx(4.0)

    @given(st.integers(1, 64))
    def test_entropy_bounded_by_log_alphabet(self, n):
        rng = np.random.default_rng(n)
        p = rng.random(n)
        p /= p.sum()
        assert entropy_bits(p) <= np.log2(n) + 1e-9


class TestRelativeStdError:
    def test_perfect_estimates(self):
        m = np.array([1.0, 2.0, 3.0])
        assert relative_std_error(m, m) == pytest.approx(0.0)

    def test_constant_bias_has_zero_std(self):
        m = np.array([2.0, 4.0, 6.0])
        assert relative_std_error(m, m / 2) == pytest.approx(0.0)

    def test_shape_mismatch_raises(self):
        with pytest.raises(ValueError):
            relative_std_error(np.ones(3), np.ones(4))

    def test_zero_estimate_raises(self):
        with pytest.raises(ValueError):
            relative_std_error(np.ones(2), np.array([1.0, 0.0]))
