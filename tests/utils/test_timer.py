"""Unit tests for repro.utils.timer."""

import pytest

from repro.utils.timer import StageTimes, Timer


class TestTimer:
    def test_measures_nonnegative_time(self):
        with Timer() as t:
            sum(range(100))
        assert t.elapsed >= 0.0

    def test_elapsed_zero_before_use(self):
        assert Timer().elapsed == 0.0


class TestStageTimes:
    def test_add_and_get(self):
        times = StageTimes()
        times.add("io", 1.5)
        times.add("io", 0.5)
        assert times.get("io") == pytest.approx(2.0)

    def test_get_missing_stage(self):
        assert StageTimes().get("nope") == 0.0

    def test_total(self):
        times = StageTimes()
        times.add("a", 1.0)
        times.add("b", 2.0)
        assert times.total == pytest.approx(3.0)

    def test_negative_raises(self):
        with pytest.raises(ValueError):
            StageTimes().add("a", -1.0)

    def test_merge(self):
        a = StageTimes({"x": 1.0})
        b = StageTimes({"x": 2.0, "y": 3.0})
        a.merge(b)
        assert a.get("x") == pytest.approx(3.0)
        assert a.get("y") == pytest.approx(3.0)

    def test_scaled(self):
        times = StageTimes({"x": 2.0})
        doubled = times.scaled(2.0)
        assert doubled.get("x") == pytest.approx(4.0)
        assert times.get("x") == pytest.approx(2.0)  # original untouched

    def test_scaled_negative_raises(self):
        with pytest.raises(ValueError):
            StageTimes().scaled(-1.0)
