"""Tests for the synthetic dataset generators."""

import numpy as np
import pytest

from repro.datasets import generators as gen


class TestGaussianRandomField:
    def test_shape_and_dtype(self):
        field = gen.gaussian_random_field((16, 24), seed=0)
        assert field.shape == (16, 24)
        assert field.dtype == np.float32

    def test_normalization(self):
        field = gen.gaussian_random_field((64, 64), seed=1, mean=5.0, std=2.0)
        assert float(field.mean()) == pytest.approx(5.0, abs=0.1)
        assert float(field.std()) == pytest.approx(2.0, rel=0.05)

    def test_deterministic(self):
        a = gen.gaussian_random_field((16, 16), seed=7)
        b = gen.gaussian_random_field((16, 16), seed=7)
        np.testing.assert_array_equal(a, b)

    def test_seeds_differ(self):
        a = gen.gaussian_random_field((16, 16), seed=1)
        b = gen.gaussian_random_field((16, 16), seed=2)
        assert not np.array_equal(a, b)

    def test_smoother_slope_compresses_better(self):
        # The knob the registry relies on: higher slope => smaller
        # prediction errors.
        from repro.compressor.predictors import make_predictor

        rough = gen.gaussian_random_field((48, 48), slope=1.5, seed=3)
        smooth = gen.gaussian_random_field((48, 48), slope=4.0, seed=3)
        pred = make_predictor("lorenzo")
        err_rough = np.std(pred.prediction_errors(rough.astype(np.float64)))
        err_smooth = np.std(pred.prediction_errors(smooth.astype(np.float64)))
        assert err_smooth < err_rough


class TestFractionalBrownian:
    def test_plain_brownian(self):
        walk = gen.fractional_brownian_1d(4096, hurst=0.5, seed=0)
        assert walk.shape == (4096,)
        # increments of Brownian motion are white
        inc = np.diff(walk.astype(np.float64))
        lag1 = np.corrcoef(inc[:-1], inc[1:])[0, 1]
        assert abs(lag1) < 0.1

    def test_invalid_hurst(self):
        with pytest.raises(ValueError):
            gen.fractional_brownian_1d(100, hurst=1.5)

    def test_persistent_walk_smoother(self):
        rough = gen.fractional_brownian_1d(4096, hurst=0.2, seed=1)
        smooth = gen.fractional_brownian_1d(4096, hurst=0.8, seed=1)
        rough_inc = np.std(np.diff(rough.astype(np.float64)))
        smooth_inc = np.std(np.diff(smooth.astype(np.float64)))
        assert smooth_inc < rough_inc


class TestLognormalField:
    def test_positive(self):
        field = gen.lognormal_field((24, 24), seed=0)
        assert np.all(field > 0)

    def test_heavy_tail(self):
        field = gen.lognormal_field((48, 48), seed=1, contrast=2.0)
        ratio = float(field.max()) / float(np.median(field))
        assert ratio > 10  # halos orders of magnitude above the median


class TestWaveSnapshots:
    def test_snapshot_count_and_shape(self):
        snaps = gen.wave_snapshots((20, 20, 20), n_snapshots=3, seed=0)
        assert len(snaps) == 3
        assert all(s.shape == (20, 20, 20) for s in snaps)

    def test_energy_grows_from_sources(self):
        snaps = gen.wave_snapshots(
            (24, 24, 24), n_snapshots=4, steps_between=10, seed=1
        )
        energies = [float(np.sum(s.astype(np.float64) ** 2)) for s in snaps]
        assert energies[-1] > energies[0]

    def test_deterministic(self):
        a = gen.wave_snapshots((16, 16, 16), 2, seed=5)
        b = gen.wave_snapshots((16, 16, 16), 2, seed=5)
        np.testing.assert_array_equal(a[1], b[1])

    def test_finite(self):
        snaps = gen.wave_snapshots((16, 16, 16), 5, steps_between=12, seed=2)
        assert all(np.all(np.isfinite(s)) for s in snaps)


class TestParticles:
    def test_positions_in_box(self):
        pos = gen.particle_positions_1d(10_000, seed=0, box=256.0)
        assert pos.shape == (10_000,)
        assert np.all((pos >= 0) & (pos < 256.0))

    def test_positions_locally_correlated(self):
        pos = gen.particle_positions_1d(50_000, seed=1).astype(np.float64)
        # consecutive particles are much closer than random pairs
        consecutive = np.abs(np.diff(pos))
        assert np.median(consecutive) < 1.0

    def test_velocities_clustered(self):
        vel = gen.particle_velocities_1d(50_000, seed=2).astype(np.float64)
        assert vel.std() > 100.0

    def test_exact_length_when_not_divisible(self):
        pos = gen.particle_positions_1d(12_345, seed=3)
        assert pos.shape == (12_345,)


class TestPhotonEvents:
    def test_shape(self):
        data = gen.photon_events_4d((2, 3, 32, 32), seed=0)
        assert data.shape == (2, 3, 32, 32)

    def test_nonnegative_with_peaks(self):
        data = gen.photon_events_4d((2, 2, 48, 48), seed=1)
        assert float(data.min()) >= 0
        assert float(data.max()) > 30  # Bragg peaks


class TestOrbitalField:
    def test_shape_and_oscillation(self):
        field = gen.orbital_field((24, 24, 24), seed=0)
        assert field.shape == (24, 24, 24)
        assert float(field.min()) < 0 < float(field.max())
