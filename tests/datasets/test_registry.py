"""Tests for the Table-I dataset registry."""

import numpy as np
import pytest

from repro.datasets.registry import (
    DATASETS,
    TABLE2_FIELDS,
    get_dataset,
    list_fields,
    load_field,
)


class TestRegistryContents:
    def test_ten_datasets(self):
        assert len(DATASETS) == 10

    def test_seventeen_table2_fields(self):
        assert len(TABLE2_FIELDS) == 17

    def test_table2_fields_resolve(self):
        for dataset, field in TABLE2_FIELDS:
            spec = get_dataset(dataset).field(field)
            assert spec.name == field

    def test_dimensionalities_match_table1(self):
        expected = {
            "CESM": 2,
            "EXAFEL": 4,
            "Hurricane": 3,
            "HACC": 1,
            "Nyx": 3,
            "SCALE": 3,
            "QMCPACK": 3,
            "Miranda": 3,
            "Brown": 1,
            "RTM": 3,
        }
        for name, dims in expected.items():
            assert get_dataset(name).dims == dims
            for field in get_dataset(name).fields:
                assert len(field.shape) == dims

    def test_unknown_dataset_raises(self):
        with pytest.raises(KeyError):
            get_dataset("NOPE")

    def test_unknown_field_raises(self):
        with pytest.raises(KeyError):
            get_dataset("CESM").field("nope")

    def test_list_fields_covers_registry(self):
        pairs = list_fields()
        assert ("CESM", "TS") in pairs
        assert len(pairs) >= 17


class TestLoading:
    @pytest.mark.parametrize("dataset,field", [
        ("CESM", "TS"),
        ("Hurricane", "U"),
        ("Nyx", "dark_matter_density"),
        ("HACC", "xx"),
        ("Brown", "pressure"),
        ("QMCPACK", "einspine"),
        ("EXAFEL", "raw"),
    ])
    def test_small_scale_load(self, dataset, field):
        data = load_field(dataset, field, size_scale=0.15)
        assert data.dtype == np.float32
        assert data.size > 0
        assert np.all(np.isfinite(data))

    def test_size_scale_grows_array(self):
        small = load_field("CESM", "TS", size_scale=0.1)
        large = load_field("CESM", "TS", size_scale=0.2)
        assert large.size > small.size

    def test_invalid_scale(self):
        with pytest.raises(ValueError):
            load_field("CESM", "TS", size_scale=0.0)

    def test_deterministic(self):
        a = load_field("Miranda", "vx", size_scale=0.2)
        b = load_field("Miranda", "vx", size_scale=0.2)
        np.testing.assert_array_equal(a, b)

    def test_rtm_snapshots_increasingly_energetic(self):
        early = load_field("RTM", "snapshot_1000", size_scale=0.4)
        late = load_field("RTM", "snapshot_3000", size_scale=0.4)
        assert float(np.abs(late).sum()) > float(np.abs(early).sum())
