"""Deterministic randomized property-test harness for the codec.

Hand-picked round-trip cases cover the combinations someone thought of;
this harness covers the ones nobody did.  A single integer seed
deterministically expands into a full compression case — dtype, shape
(rank 0..4 with prime-sized dims), field character, bound mode
(ABS/REL/PW_REL plus model-driven PSNR targeting), predictor, lossless
backend, chunking, tiling and adaptivity — and :func:`run_seed` asserts
the invariants every case must satisfy:

* the reconstruction honours the configured error bound (mode-aware:
  absolute, range-relative, point-wise relative with exact zeros, or
  the per-tile bounds of an adaptive plan);
* shape and dtype survive the round trip;
* the flat and tiled front-ends decode the same blob identically;
* a tiled container's full decode, full-region decode and random
  subregion decodes agree with each other, and region decodes touch
  only the intersecting tiles;
* temporal cases replay the case as a short snapshot chain: the bound
  holds on *every* snapshot (keyframe or delta), full decode and
  region decode of a v6 container are byte-identical, keyframes decode
  standalone while deltas demand their reference, and the keyframe
  cadence bounds the number of containers any version needs.

Failures re-raise with the seed and the full case description, so

    PROPTEST_SEED=<seed> python -m pytest tests/compressor/test_roundtrip_properties.py

reproduces any reported case exactly.  ``PROPTEST_COUNT=<n>`` widens
the sweep beyond the tier-1 default.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

import numpy as np

from repro.compressor import (
    CompressionConfig,
    ErrorBoundMode,
    PlannerCache,
    SZCompressor,
    TemporalCompressor,
    TiledCompressor,
)
from repro.compressor.tiled import intersect_extent, normalize_region

__all__ = ["Case", "draw_case", "check_case", "run_seed"]

#: prime-heavy dimension menu — primes exercise every edge-tile and
#: interpolation-level branch that power-of-two shapes hide
DIM_MENU = (1, 2, 3, 5, 7, 11, 13, 17, 19, 23)

#: cap on the generated array size (keeps a full sweep in seconds)
MAX_POINTS = 6000

#: slack on the measured PSNR of model-targeted cases: the model is an
#: estimator, not a guarantee — the hard guarantee stays the absolute
#: bound it derives
PSNR_SLACK_DB = 6.0


@dataclass(frozen=True)
class Case:
    """One generated compression scenario."""

    seed: int
    data: np.ndarray
    config: CompressionConfig
    kind: str
    workers: int
    #: PSNR the error bound was model-derived for (None = direct bound)
    psnr_target: float | None = None

    def describe(self) -> str:
        cfg = self.config
        return (
            f"seed={self.seed} kind={self.kind} shape={self.data.shape} "
            f"dtype={self.data.dtype} mode={cfg.mode.value} "
            f"eb={cfg.error_bound:.4g} predictor={cfg.predictor} "
            f"lossless={cfg.lossless} chunk={cfg.chunk_size} "
            f"tile={cfg.tile_shape} adaptive={cfg.adaptive} "
            f"fit_clusters={cfg.fit_clusters} temporal={cfg.temporal} "
            f"workers={self.workers} psnr_target={self.psnr_target}"
        )


# -- case generation -----------------------------------------------------------


def _draw_shape(rng: np.random.Generator) -> tuple[int, ...]:
    ndim = int(rng.choice([0, 1, 1, 2, 2, 2, 3, 3, 4]))
    while True:
        shape = tuple(
            int(rng.choice(DIM_MENU)) for _ in range(ndim)
        )
        if int(np.prod(shape)) <= MAX_POINTS if shape else True:
            return shape


def _draw_field(
    rng: np.random.Generator, shape: tuple[int, ...], kind: str
) -> np.ndarray:
    n = int(np.prod(shape)) if shape else 1
    if kind == "constant":
        return np.full(shape, float(rng.normal(0.0, 5.0)))
    if kind == "sparse":
        data = np.zeros(n)
        hot = rng.random(n) < 0.15
        data[hot] = rng.normal(0.0, 3.0, size=int(hot.sum()))
        return data.reshape(shape)
    if kind == "noise":
        return rng.normal(0.0, 1.0, size=shape)
    # smooth: separable sinusoid + mild noise, optionally offset so
    # PW_REL sees data away from zero
    field = np.ones(shape)
    for axis, dim in enumerate(shape):
        axis_shape = [1] * len(shape)
        axis_shape[axis] = dim
        wave = np.sin(
            np.linspace(0.0, float(rng.uniform(2, 9)), dim)
            + float(rng.uniform(0, 2))
        )
        field = field * wave.reshape(axis_shape)
    field = field + 0.02 * rng.normal(size=shape)
    if kind == "smooth_offset":
        field = field + float(rng.uniform(2.0, 10.0))
    return field


def draw_case(seed: int) -> Case:
    """Expand *seed* into a deterministic compression case."""
    rng = np.random.default_rng(seed)
    shape = _draw_shape(rng)
    kind = str(
        rng.choice(
            ["smooth", "smooth", "smooth_offset", "noise", "sparse", "constant"]
        )
    )
    dtype = np.dtype(str(rng.choice(["f4", "f8"])))
    data = _draw_field(rng, shape, kind).astype(dtype)

    predictor = str(
        rng.choice(["lorenzo", "lorenzo", "interpolation", "regression"])
    )
    lossless = rng.choice(["zstd_like", "gzip_like", "rle", "none"])
    lossless = None if lossless == "none" else str(lossless)
    chunk_size = int(rng.integers(64, 1500)) if rng.random() < 0.4 else None

    mode = ErrorBoundMode(str(rng.choice(["abs", "abs", "rel", "pw_rel"])))
    vrange = float(data.max() - data.min()) if data.size else 0.0
    if mode is ErrorBoundMode.ABS:
        scale = vrange if vrange > 0 else 1.0
        error_bound = scale * 10.0 ** float(rng.uniform(-4, -1))
    else:
        error_bound = 10.0 ** float(rng.uniform(-4, -2))

    tile_shape = None
    adaptive = False
    fit_clusters = None
    if len(shape) >= 1 and all(dim >= 1 for dim in shape):
        if rng.random() < 0.7:
            tile_shape = tuple(
                int(rng.integers(1, dim + 1)) for dim in shape
            )
            adaptive = (
                mode is not ErrorBoundMode.PW_REL
                and data.size > 0
                and vrange > 0
                and rng.random() < 0.2
            )
            if adaptive:
                # sweep the fit-reuse spectrum: planner default,
                # per-tile fits, and aggressive single-cluster sharing
                menu = (None, 0, 1, 4, 12)
                fit_clusters = menu[int(rng.integers(0, len(menu)))]

    psnr_target = None
    if (
        mode is ErrorBoundMode.ABS
        and not adaptive
        and kind in ("smooth", "smooth_offset", "noise")
        and data.size >= 512
        and vrange > 0
        and rng.random() < 0.25
    ):
        psnr_target = float(rng.uniform(45.0, 75.0))

    # drawn last so every earlier draw matches pre-temporal seeds
    temporal = (
        mode is not ErrorBoundMode.PW_REL
        and not adaptive
        and len(shape) >= 1
        and data.size > 0
        and np.issubdtype(data.dtype, np.floating)
        and rng.random() < 0.15
    )

    config = CompressionConfig(
        predictor=predictor,
        mode=mode,
        error_bound=error_bound,
        lossless=lossless,
        chunk_size=chunk_size,
        tile_shape=tile_shape,
        adaptive=adaptive,
        fit_clusters=fit_clusters,
        temporal=temporal,
    )
    workers = int(rng.choice([1, 1, 3]))
    return Case(
        seed=seed,
        data=data,
        config=config,
        kind=kind,
        workers=workers,
        psnr_target=psnr_target,
    )


# -- invariant checks ----------------------------------------------------------


def _assert_bound(
    data: np.ndarray,
    recon: np.ndarray,
    config: CompressionConfig,
    error_bound: float,
) -> None:
    """Mode-aware bound check with one-ULP slack for f4 storage."""
    if data.size == 0:
        return
    a = np.asarray(data, dtype=np.float64)
    b = np.asarray(recon, dtype=np.float64)
    ulp = 0.0
    if np.asarray(recon).dtype == np.float32:
        ulp = float(np.max(np.abs(b))) * float(np.finfo(np.float32).eps)
    if config.mode is ErrorBoundMode.PW_REL:
        zeros = a == 0
        assert np.array_equal(b[zeros], a[zeros]), "zeros must be exact"
        rel = np.abs(b[~zeros] / a[~zeros] - 1.0)
        if rel.size:
            rel_ulp = float(np.finfo(np.float32).eps) if ulp else 0.0
            assert float(rel.max()) <= error_bound * (1 + 1e-6) + rel_ulp, (
                f"PW_REL bound violated: {float(rel.max()):.3e} > "
                f"{error_bound:.3e}"
            )
        return
    if config.mode is ErrorBoundMode.REL:
        error_bound = error_bound * float(a.max() - a.min())
    max_err = float(np.max(np.abs(a - b)))
    assert max_err <= error_bound * (1 + 1e-9) + ulp, (
        f"bound violated: max err {max_err:.3e} > eb {error_bound:.3e}"
    )


def _check_tiled(case: Case, flat_recon: np.ndarray) -> None:
    """Tiled round-trip + region-decode invariants."""
    rng = np.random.default_rng(case.seed + 1)
    data, config = case.data, case.config
    tc = TiledCompressor(workers=case.workers)
    result = tc.compress(data, config)

    recon = tc.decompress(result.blob)
    assert recon.shape == data.shape and recon.dtype == data.dtype
    if config.adaptive and result.plan is not None:
        # every tile honours its own allocated absolute bound
        for choice in result.plan.choices:
            slc = tuple(
                slice(a, b) for a, b in zip(choice.start, choice.stop)
            )
            _assert_bound(
                data[slc],
                recon[slc],
                replace(config, mode=ErrorBoundMode.ABS),
                choice.error_bound,
            )
        _check_plan_quality(case, recon, result.plan)
        _check_cached_plan(case, recon, result.plan)
    else:
        _assert_bound(data, recon, config, config.error_bound)

    if data.size == 0:
        return
    # full-region decode equals the full decode
    full_region = tuple(slice(0, n) for n in data.shape)
    np.testing.assert_array_equal(
        tc.decompress_region(result.blob, full_region), recon
    )
    # random subregions decode to exactly the full decode's slice,
    # touching only the intersecting tiles
    for _ in range(3):
        region = tuple(
            slice(lo, int(rng.integers(lo, n + 1)))
            for n, lo in ((n, int(rng.integers(0, n))) for n in data.shape)
        )
        roi = tc.decompress_region(result.blob, region)
        np.testing.assert_array_equal(roi, recon[region])
        hits = sum(
            intersect_extent(
                t.start, t.stop, normalize_region(region, data.shape)
            )
            is not None
            for t in result.tiles
        )
        assert tc.last_tiles_decoded == hits


def _check_plan_quality(
    case: Case, recon: np.ndarray, plan
) -> None:
    """Clustered plans must still deliver the aggregate PSNR target.

    The planner trades per-tile fits for shared cluster fits; that may
    cost bitrate optimality but never the quality floor — the measured
    aggregate PSNR stays within the estimator's slack of the target the
    uniform nominal config would have achieved.
    """
    data = case.data
    if (
        data.size < 512
        or not np.isfinite(plan.target_psnr)
        or case.kind not in ("smooth", "smooth_offset", "noise")
    ):
        return
    from repro.analysis.metrics import psnr

    measured = psnr(data, recon)
    assert measured >= plan.target_psnr - PSNR_SLACK_DB, (
        f"adaptive plan missed its aggregate PSNR target: "
        f"{measured:.1f} dB for a {plan.target_psnr:.1f} dB target"
    )


def _check_cached_plan(
    case: Case, recon: np.ndarray, plan
) -> None:
    """Plan-cache round trip: the replayed plan is the plan.

    A second compression through the same cache must hit, reuse the
    exact per-tile choices, and decode to exactly what the fresh plan's
    container decodes to.  (The raw blobs are not compared: the header
    records the cache status, which legitimately differs between the
    miss and hit runs.)
    """
    data, config = case.data, case.config
    cache = PlannerCache()
    tc = TiledCompressor(workers=case.workers, plan_cache=cache)
    first = tc.compress(data, config, dataset="prop")
    second = tc.compress(data, config, dataset="prop")
    assert first.plan is not None and second.plan is not None
    assert first.plan.stats.cache == "miss"
    assert second.plan.stats.cache == "hit"
    assert [c.to_json() for c in second.plan.choices] == [
        c.to_json() for c in plan.choices
    ]
    np.testing.assert_array_equal(tc.decompress(second.blob), recon)


def _check_temporal(case: Case) -> None:
    """Replay the case as a 3-snapshot chain through the v6 codec.

    Keyframe cadence 2, so the chain is KF, delta, KF: every version
    must honour the bound against its *own* snapshot, v6 full and
    region decodes must agree byte-for-byte, keyframes must decode
    standalone, and a delta must refuse to decode without the decoded
    reference its header names.
    """
    data, config = case.data, case.config
    rng = np.random.default_rng(case.seed + 2)
    scale = float(np.max(np.abs(data))) if data.size else 1.0
    scale = scale if scale > 0 else 1.0
    snaps = [data]
    for _ in range(2):
        drift = 0.03 * scale * rng.standard_normal(data.shape)
        snaps.append((snaps[-1] + drift).astype(data.dtype))

    interval = 2
    tc = TemporalCompressor(workers=case.workers)
    previous = None
    for index, snap in enumerate(snaps):
        keyframe = index % interval == 0
        result = tc.compress_snapshot(
            snap,
            config,
            reference=None if keyframe else previous,
            ref_id=None if keyframe else f"v{index - 1}",
            snapshot_index=index,
        )
        if keyframe:
            # the cadence bounds chain depth: keyframes decode
            # standalone, so no version walks past its keyframe
            assert result.keyframe
            assert result.blob[4] != 6
        reference = None if result.keyframe else previous
        recon = tc.decompress(result.blob, reference=reference)
        assert recon.shape == snap.shape and recon.dtype == snap.dtype
        _assert_bound(snap, recon, config, config.error_bound)

        full_region = tuple(slice(0, n) for n in snap.shape)
        np.testing.assert_array_equal(
            tc.decompress_region(
                result.blob, full_region, reference=reference
            ),
            recon,
        )
        region = tuple(
            slice(lo, int(rng.integers(lo, n + 1)))
            for n, lo in (
                (n, int(rng.integers(0, n))) for n in snap.shape
            )
        )
        np.testing.assert_array_equal(
            tc.decompress_region(
                result.blob, region, reference=reference
            ),
            recon[region],
        )
        if not result.keyframe and any(
            record.temporal for record in result.tiles
        ):
            assert result.blob[4] == 6
            try:
                tc.decompress(result.blob)
            except ValueError:
                pass
            else:
                raise AssertionError(
                    "delta decoded without its reference"
                )
        previous = recon


def check_case(case: Case) -> None:
    """Assert every round-trip invariant of *case*."""
    data, config = case.data, case.config

    error_bound = config.error_bound
    if case.psnr_target is not None:
        from repro.core.model import RatioQualityModel

        model = RatioQualityModel(
            predictor=config.predictor, seed=case.seed
        ).fit(data)
        error_bound = model.error_bound_for_psnr(case.psnr_target)
        config = replace(config, error_bound=error_bound)

    flat_config = replace(
        config, tile_shape=None, adaptive=False, temporal=False
    )
    sz = SZCompressor(workers=case.workers)
    result = sz.compress(data, flat_config)
    recon = sz.decompress(result.blob)
    assert recon.shape == data.shape and recon.dtype == data.dtype
    _assert_bound(data, recon, flat_config, error_bound)

    if case.psnr_target is not None and data.size:
        from repro.analysis.metrics import psnr

        measured = psnr(data, recon)
        assert measured >= case.psnr_target - PSNR_SLACK_DB, (
            f"model-targeted PSNR too low: {measured:.1f} dB for a "
            f"{case.psnr_target:.1f} dB target"
        )

    # flat and tiled front-ends must decode the same blob identically
    np.testing.assert_array_equal(
        TiledCompressor().decompress(result.blob), recon
    )

    if config.tile_shape is not None and data.ndim >= 1:
        _check_tiled(
            replace(case, config=replace(config, temporal=False)),
            recon,
        )

    if config.temporal:
        _check_temporal(replace(case, config=config))


def run_seed(seed: int) -> None:
    """Generate and check one case; failures carry the reproduction."""
    case = draw_case(seed)
    try:
        check_case(case)
    except Exception as exc:
        raise AssertionError(
            f"property case failed [{case.describe()}]\n"
            f"reproduce with: PROPTEST_SEED={seed} python -m pytest "
            f"tests/compressor/test_roundtrip_properties.py\n{exc}"
        ) from exc
