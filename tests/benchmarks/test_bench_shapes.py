"""Schema tests for the throughput-bench JSON recorded per PR.

``BENCH_throughput.json`` is the cross-PR performance trajectory, so
the shape of each mode's entry is a contract: a key rename or a
non-finite float sneaking in would silently corrupt the history.
These tests run the two planner-centric measurements at bench scale
(they are cheap — one 256x256 snapshot each) and pin their schemas.
"""

import json
import os
import sys

import pytest

BENCH_DIR = os.path.join(
    os.path.dirname(os.path.dirname(os.path.dirname(__file__))),
    "benchmarks",
)
sys.path.insert(0, BENCH_DIR)

import bench_throughput  # noqa: E402


@pytest.fixture(scope="module")
def planner_perf():
    return bench_throughput._measure_planner_perf()


@pytest.fixture(scope="module")
def v5_adaptive():
    return bench_throughput._measure_adaptive()


@pytest.fixture(scope="module")
def snapshot_stream(tmp_path_factory):
    return bench_throughput._measure_snapshot_stream(
        tmp_path_factory.mktemp("stream")
    )


@pytest.fixture(scope="module")
def chaos(tmp_path_factory):
    return bench_throughput._measure_chaos(
        tmp_path_factory.mktemp("chaos")
    )


PLANNER_COUNTER_KEYS = {
    "tiles_planned",
    "tiles_modeled",
    "clusters",
    "fits_performed",
    "refits",
    "cache",
}


def test_planner_perf_shape(planner_perf):
    assert set(planner_perf) == {
        "field",
        "planner",
        "fit_ratio",
        "plan_s",
        "clustered_bytes",
        "per_tile_bytes",
        "reuse_byte_overhead",
        "clustered_psnr",
        "per_tile_psnr",
        "cache_status",
        "cached_plan_s",
        "plan_cache_speedup",
        "uniform_compress_s",
        "cached_compress_s",
        "cached_vs_uniform",
    }
    assert set(planner_perf["planner"]) == PLANNER_COUNTER_KEYS
    # strict JSON: the trajectory file must never carry NaN/Infinity
    json.loads(json.dumps(planner_perf, allow_nan=False))


def test_planner_perf_counters_consistent(planner_perf):
    stats = planner_perf["planner"]
    assert stats["tiles_planned"] == 64
    assert stats["fits_performed"] == stats["clusters"] + stats["refits"]
    assert planner_perf["fit_ratio"] == pytest.approx(
        stats["tiles_planned"] / stats["fits_performed"], abs=0.01
    )
    assert planner_perf["cache_status"] in {"hit", "drift", "miss"}


def test_v5_adaptive_shape(v5_adaptive):
    assert set(v5_adaptive) == {
        "field",
        "compress_s",
        "decompress_s",
        "compress_mb_s",
        "decompress_mb_s",
        "bytes",
        "ratio",
        "psnr",
        "predictor_counts",
        "planner",
        "plan_s",
        "cached_plan_s",
        "cached_compress_s",
        "plan_cache_speedup",
        "uniform_equal_psnr",
        "equal_psnr_gain",
    }
    assert set(v5_adaptive["planner"]) == PLANNER_COUNTER_KEYS
    for entry in v5_adaptive["uniform_equal_psnr"].values():
        assert set(entry) == {"bytes", "ratio", "psnr", "error_bound"}
    json.loads(json.dumps(v5_adaptive, allow_nan=False))


def test_v5_adaptive_counters(v5_adaptive):
    stats = v5_adaptive["planner"]
    assert stats["tiles_planned"] == 64
    assert 0 < stats["fits_performed"] <= stats["tiles_planned"]
    assert v5_adaptive["plan_cache_speedup"] >= 1.0
    assert v5_adaptive["equal_psnr_gain"] > 1.0


def test_snapshot_stream_shape(snapshot_stream):
    assert set(snapshot_stream) == {
        "field",
        "trad",
        "stream",
        "delta_vs_scratch",
        "chain",
        "backends_byte_identical",
    }
    assert set(snapshot_stream["field"]) == {
        "shape",
        "tile_shape",
        "snapshots",
        "steps_between",
        "target_psnr",
        "keyframe_interval",
    }
    assert set(snapshot_stream["trad"]) == {
        "error_bound",
        "bytes",
        "worst_psnr",
    }
    assert set(snapshot_stream["stream"]) == {
        "bytes",
        "worst_psnr",
        "error_bounds",
        "keyframes",
        "temporal_tiles",
        "spatial_tiles",
    }
    assert set(snapshot_stream["chain"]) == {
        "depths",
        "max_chain_depth",
        "cold_read_ms",
        "warm_read_ms",
        "cold_keyframe_ms",
    }
    json.loads(json.dumps(snapshot_stream, allow_nan=False))


def test_chaos_shape(chaos):
    assert set(chaos) == {
        "field",
        "faults",
        "requests",
        "served",
        "failed",
        "availability",
        "wrong_bytes_responses",
        "retry",
        "elapsed_s",
        "checksum_overhead",
    }
    assert set(chaos["faults"]) == {
        "seed",
        "http_failure_rate",
        "injected",
    }
    assert set(chaos["retry"]) == {
        "mean_attempts",
        "total_backoff_s",
    }
    json.loads(json.dumps(chaos, allow_nan=False))


def test_chaos_counters(chaos):
    assert chaos["served"] + chaos["failed"] == chaos["requests"]
    # the headline guarantee: under the fault storm, every byte the
    # client accepted was correct
    assert chaos["wrong_bytes_responses"] == 0
    assert chaos["faults"]["injected"] > 0
    assert chaos["retry"]["mean_attempts"] >= 1.0
    assert 0 <= chaos["checksum_overhead"] <= 0.01


def test_snapshot_stream_counters(snapshot_stream):
    stream = snapshot_stream["stream"]
    chain = snapshot_stream["chain"]
    n = snapshot_stream["field"]["snapshots"]
    interval = snapshot_stream["field"]["keyframe_interval"]
    assert len(stream["error_bounds"]) == n
    assert len(chain["depths"]) == n
    # the chain walks keyframe -> delta -> ... within each group
    assert chain["depths"] == [v % interval + 1 for v in range(n)]
    assert chain["max_chain_depth"] <= interval
    assert stream["keyframes"] == -(-n // interval)
    assert stream["temporal_tiles"] + stream["spatial_tiles"] > 0
    assert snapshot_stream["delta_vs_scratch"] > 0
    assert snapshot_stream["backends_byte_identical"] is True
