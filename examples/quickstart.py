"""Quickstart: compress a scientific field and trust the model's forecast.

Demonstrates the core loop of the library:

1. generate (or load) a floating-point field;
2. fit the ratio-quality model with one 1% sampling pass;
3. ask it for the expected ratio/PSNR at a few bounds — no compression
   runs needed;
4. pick a bound, compress for real, and check the forecast.

Run:  python examples/quickstart.py
"""

from __future__ import annotations

import numpy as np

from repro import CompressionConfig, SZCompressor
from repro.analysis import psnr
from repro.core import RatioQualityModel
from repro.datasets import load_field
from repro.utils import format_table


def main() -> None:
    # A Hurricane-Isabel-like 3-D weather field (synthetic stand-in).
    data = load_field("Hurricane", "U", size_scale=0.5)
    vrange = float(data.max() - data.min())
    print(f"field: {data.shape} float32, value range {vrange:.3f}\n")

    # One sampling pass answers everything about this (data, predictor).
    model = RatioQualityModel(predictor="lorenzo").fit(data)

    rows = []
    for rel in (1e-4, 1e-3, 1e-2):
        est = model.estimate(vrange * rel)
        rows.append((rel, est.error_bound, est.ratio, est.psnr, est.ssim))
    print(
        format_table(
            ["rel eb", "abs eb", "pred ratio", "pred PSNR", "pred SSIM"],
            rows,
            float_spec=".4g",
            title="model forecasts (no compression executed yet)",
        )
    )

    # Inverse query: what bound reaches a 10:1 ratio?
    eb = model.error_bound_for_ratio(10.0)
    print(f"\nbound for a predicted 10:1 ratio: {eb:.5g}")

    # Now compress for real and compare.
    sz = SZCompressor()
    result, recon = sz.roundtrip(
        data, CompressionConfig(predictor="lorenzo", error_bound=eb)
    )
    est = model.estimate(eb)
    print(
        f"measured ratio {result.ratio:.2f} (predicted {est.ratio:.2f}), "
        f"measured PSNR {psnr(data, recon):.2f} dB "
        f"(predicted {est.psnr:.2f} dB)"
    )
    max_err = float(np.max(np.abs(recon.astype(np.float64) - data)))
    print(f"max point-wise error {max_err:.5g} <= bound {eb:.5g}")


if __name__ == "__main__":
    main()
