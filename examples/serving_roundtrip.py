"""Serving round-trip: start `repro serve`, then compress -> read -> stat.

Launches the HTTP server as a subprocess over a temporary store (the
way a deployment would run it), uploads a synthetic field for
server-side tiled compression, reads a hyperslab back twice (cold,
then warm from the decoded-tile cache), checks the error bound and the
cache counters, and prints the dataset's container stat.  Exits
non-zero on any failure — CI runs this as the serving smoke job.

Usage::

    python examples/serving_roundtrip.py [port]
"""

import subprocess
import sys
import tempfile
import time

import numpy as np

from repro.service import ArrayClient, ServiceError

EB = 1e-3
PORT = int(sys.argv[1]) if len(sys.argv) > 1 else 18742


def wait_for_server(client: ArrayClient, timeout_s: float = 15.0) -> None:
    deadline = time.time() + timeout_s
    while time.time() < deadline:
        try:
            if client.health()["status"] == "ok":
                return
        except (OSError, ServiceError):
            time.sleep(0.2)
    raise SystemExit("server did not come up in time")


def main() -> int:
    store_dir = tempfile.mkdtemp(prefix="repro-store-")
    server = subprocess.Popen(
        [
            sys.executable,
            "-m",
            "repro",
            "serve",
            store_dir,
            "--port",
            str(PORT),
            "--cache-mb",
            "64",
        ]
    )
    try:
        client = ArrayClient(f"http://127.0.0.1:{PORT}")
        wait_for_server(client)

        rng = np.random.default_rng(0)
        field = np.cumsum(
            rng.standard_normal((128, 128)), axis=0
        ).astype(np.float32)

        entry = client.put("demo", field, eb=EB, tile=(32, 32))
        print(
            f"put: {entry['raw_bytes']} -> {entry['compressed_bytes']} "
            f"bytes ({entry['ratio']:.2f}x, {entry['n_tiles']} tiles)"
        )
        assert entry["n_tiles"] == 16

        roi = client.read_region("demo", "32:96,32:96")
        cold = dict(client.last_read_stats)
        assert roi.shape == (64, 64)
        assert np.max(np.abs(roi - field[32:96, 32:96])) <= EB * (
            1 + 1e-5
        )
        roi_warm = client.read_region("demo", "32:96,32:96")
        warm = dict(client.last_read_stats)
        assert np.array_equal(roi, roi_warm)
        assert cold["cache_misses"] > 0, cold
        assert warm["cache_hits"] == warm["tiles_touched"], warm
        print(f"read: cold {cold} -> warm {warm}")

        stat = client.stat("demo")
        assert stat["container"]["container_version"] == 4
        assert stat["container"]["tile_map"]["n_tiles"] == 16
        print(
            "stat: v4 container, "
            f"{stat['container']['tile_map']['payload_bytes']} payload "
            "bytes"
        )

        cache = client.cache_stats()
        assert cache["hits"] > 0
        print(f"cache: {cache}")
        print("serving round-trip OK")
        return 0
    finally:
        server.terminate()
        server.wait(timeout=10)


if __name__ == "__main__":
    sys.exit(main())
