"""Predictor selection: let the model pick the best-fit predictor.

Use-case 1 (§IV-A): each predictor (Lorenzo, interpolation, regression)
wins in a different region of the rate-distortion plane.  One sampling
pass per predictor yields the full estimated curves, the per-operating-
point winner, and the crossover bit-rate — at a fraction of the cost of
compressing under every candidate.

Run:  python examples/predictor_selection.py
"""

from __future__ import annotations

import numpy as np

from repro import CompressionConfig, SZCompressor
from repro.analysis import psnr
from repro.datasets import load_field
from repro.usecases import PredictorSelector
from repro.utils import format_table


def main() -> None:
    data = load_field("RTM", "snapshot_3000", size_scale=0.6)
    vrange = float(data.max() - data.min())
    print(f"RTM snapshot: {data.shape}, value range {vrange:.4g}\n")

    selector = PredictorSelector(
        ("lorenzo", "interpolation", "regression")
    ).fit(data)

    # estimated rate-distortion curves
    rows = []
    for rel in (1e-5, 1e-4, 1e-3, 1e-2):
        eb = vrange * rel
        decision = selector.select_for_error_bound(eb)
        ests = decision.alternatives
        rows.append(
            (
                rel,
                ests["lorenzo"].bitrate,
                ests["interpolation"].bitrate,
                ests["regression"].bitrate,
                decision.predictor,
            )
        )
    print(
        format_table(
            ["rel eb", "lorenzo b/pt", "interp b/pt", "regr b/pt", "winner"],
            rows,
            float_spec=".3f",
            title="estimated bit-rate per predictor (fixed bound)",
        )
    )

    crossover = selector.crossover_bitrate(
        "lorenzo", "interpolation", bitrate_range=(0.5, 10.0)
    )
    print(f"\nlorenzo/interpolation crossover bit-rate: {crossover}")

    # validate the winner at one operating point with a real run
    target_rate = 2.0
    decision = selector.select_for_bitrate(target_rate)
    print(
        f"\nat {target_rate} bits/pt the model picks "
        f"{decision.predictor!r} (predicted PSNR "
        f"{decision.estimate.psnr:.2f} dB)"
    )
    sz = SZCompressor()
    for name, model in selector.models.items():
        eb = model.error_bound_for_bitrate(target_rate)
        cfg = CompressionConfig(predictor=name, error_bound=eb)
        result, recon = sz.roundtrip(data, cfg)
        print(
            f"  measured {name:14s}: {result.bit_rate:.2f} b/pt, "
            f"{psnr(data, recon):.2f} dB"
        )


if __name__ == "__main__":
    main()
