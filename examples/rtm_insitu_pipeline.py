"""RTM in-situ pipeline: model-guided snapshot dumping into HDF5-like storage.

Reproduces the paper's flagship workflow (§V-F): a reverse-time-migration
simulation emits wavefield snapshots; each is compressed with an error
bound chosen *in situ* by the ratio-quality model for a target PSNR and
written to a chunked, filtered container — no trial-and-error runs.

The same sequence is also stored with the traditional offline worst-case
bound to show the bit savings.

Run:  python examples/rtm_insitu_pipeline.py
"""

from __future__ import annotations

import os
import tempfile

import numpy as np

from repro import CompressionConfig, SZCompressor
from repro.analysis import psnr
from repro.datasets import wave_snapshots
from repro.storage import H5LikeFile
from repro.usecases import SnapshotPipeline, offline_worst_case_error_bound
from repro.utils import format_table

TARGET_PSNR = 56.0


def main() -> None:
    print("running the acoustic FDTD forward model ...")
    snaps = wave_snapshots(
        (48, 48, 48), n_snapshots=6, steps_between=10, seed=7
    )

    # -- traditional offline study: one worst-case bound for everything
    vrange = max(float(np.ptp(s)) for s in snaps)
    candidates = [vrange * 10 ** (-e) for e in (1, 2, 3, 4, 5)]
    offline = offline_worst_case_error_bound(
        list(snaps), CompressionConfig(), candidates, TARGET_PSNR
    )
    print(
        f"offline worst-case bound (5 candidates x {len(snaps)} "
        f"snapshots profiled): {offline.chosen_error_bound:.4g}"
    )

    # -- in-situ model-guided pipeline, writing into the container
    pipeline = SnapshotPipeline(target_psnr=TARGET_PSNR)
    sz = SZCompressor()
    with tempfile.TemporaryDirectory() as tmp:
        path = os.path.join(tmp, "rtm.rqh5")
        rows = []
        with H5LikeFile(path, "w") as store:
            for i, snap in enumerate(snaps):
                record = pipeline.process(snap)
                store.create_dataset(
                    f"snapshot_{i:03d}",
                    snap,
                    CompressionConfig(error_bound=record.error_bound),
                    attrs={"step": i, "target_psnr": TARGET_PSNR},
                )
                trad = sz.compress(
                    snap,
                    CompressionConfig(
                        error_bound=offline.chosen_error_bound
                    ),
                )
                rows.append(
                    (
                        i,
                        record.error_bound,
                        record.bit_rate,
                        record.psnr,
                        trad.bit_rate,
                    )
                )
        print(
            format_table(
                [
                    "snap",
                    "model eb",
                    "model b/pt",
                    "model PSNR",
                    "offline b/pt",
                ],
                rows,
                float_spec=".3g",
                title=f"\nper-snapshot decisions (target {TARGET_PSNR} dB)",
            )
        )
        size = os.path.getsize(path)
        raw = sum(int(s.nbytes) for s in snaps)
        print(
            f"\ncontainer: {size / 1024:.1f} KiB for {raw / 1024:.1f} KiB "
            f"raw ({raw / size:.1f}x)"
        )

        # verify a read-back snapshot honours its quality target
        with H5LikeFile(path, "r") as store:
            back = store.read_dataset("snapshot_005")
            quality = psnr(snaps[5], back)
            print(
                f"read-back check snapshot_005: PSNR {quality:.2f} dB "
                f"(target {TARGET_PSNR} dB), attrs {store.attrs('snapshot_005')}"
            )


if __name__ == "__main__":
    main()
