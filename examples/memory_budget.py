"""Memory-budget compression: fit arrays into fixed byte budgets.

Use-case 2 (§IV-B): an application stages compressed snapshots in a
fixed memory pool (GPU memory, burst buffer).  The model converts each
array's byte budget straight into an error bound — one shot, no trials —
with the paper's 20% headroom; the strict policy re-optimizes the rare
overflow.

Run:  python examples/memory_budget.py
"""

from __future__ import annotations

from repro.datasets import load_field, wave_snapshots
from repro.usecases import MemoryBudgetCompressor
from repro.utils import format_table


def main() -> None:
    # a mixed working set: weather + turbulence + two wavefields
    arrays = {
        "hurricane_u": load_field("Hurricane", "U", size_scale=0.4),
        "miranda_vx": load_field("Miranda", "vx", size_scale=0.4),
    }
    snaps = wave_snapshots((40, 40, 40), 4, steps_between=15, seed=3)
    arrays["rtm_early"] = snaps[1]
    arrays["rtm_late"] = snaps[3]

    raw_total = sum(a.nbytes for a in arrays.values())
    pool = raw_total // 12  # 12x reduction demanded
    print(
        f"working set {raw_total / 1024:.0f} KiB, memory pool "
        f"{pool / 1024:.0f} KiB\n"
    )

    compressor = MemoryBudgetCompressor(
        predictor="lorenzo", strict=True
    )
    reports = compressor.compress_group(list(arrays.values()), pool)

    rows = []
    for name, report in zip(arrays, reports):
        rows.append(
            (
                name,
                report.budget_bytes,
                report.result.compressed_bytes,
                report.utilization,
                report.error_bound,
                "yes" if report.fits else "NO",
                report.rounds,
            )
        )
    print(
        format_table(
            [
                "array",
                "budget B",
                "used B",
                "util",
                "bound",
                "fits",
                "rounds",
            ],
            rows,
            float_spec=".3g",
            title="per-array budget allocation (80% target, strict)",
        )
    )
    used = sum(r.result.compressed_bytes for r in reports)
    print(
        f"\npool usage: {used / 1024:.1f} / {pool / 1024:.1f} KiB "
        f"({used / pool:.0%}); every array within budget: "
        f"{all(r.fits for r in reports)}"
    )


if __name__ == "__main__":
    main()
