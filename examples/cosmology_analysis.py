"""Cosmology post-hoc analysis: choose a bound that preserves the science.

The Nyx use-case (§III-D4): a dark-matter density field feeds two
analyses — the matter power spectrum and a halo finder.  The model's
error-distribution estimate propagates into a predicted spectrum
degradation, letting us pick the largest bound whose predicted impact
stays under a tolerance, then the halo catalogue is checked to confirm
the choice preserved the halo population.

Run:  python examples/cosmology_analysis.py
"""

from __future__ import annotations

import numpy as np

from repro import CompressionConfig, SZCompressor
from repro.analysis import (
    find_halos,
    halo_match_f1,
    predicted_spectrum_relative_error,
    spectrum_relative_error,
)
from repro.core import RatioQualityModel
from repro.datasets import load_field
from repro.utils import format_table

SPECTRUM_TOLERANCE = 0.01  # <=1% mean relative P(k) perturbation


def main() -> None:
    density = load_field("Nyx", "dark_matter_density", size_scale=0.5)
    vrange = float(density.max() - density.min())
    print(
        f"dark-matter density: {density.shape}, range {vrange:.4g}, "
        f"median {float(np.median(density)):.4g} (heavy-tailed)\n"
    )

    model = RatioQualityModel(predictor="lorenzo").fit(density)

    # sweep candidate bounds through the *predicted* spectrum impact
    rows = []
    chosen = None
    for rel in (1e-5, 1e-4, 1e-3, 1e-2):
        eb = vrange * rel
        est = model.estimate(eb)
        predicted = predicted_spectrum_relative_error(
            density, model.error_variance(eb)
        )
        rows.append((rel, est.ratio, est.psnr, predicted))
        if predicted <= SPECTRUM_TOLERANCE:
            chosen = eb
    print(
        format_table(
            ["rel eb", "pred ratio", "pred PSNR", "pred P(k) err"],
            rows,
            float_spec=".4g",
            title="predicted post-hoc impact per candidate bound",
        )
    )
    assert chosen is not None, "no candidate met the tolerance"
    print(
        f"\nlargest bound within {SPECTRUM_TOLERANCE:.0%} predicted "
        f"spectrum error: {chosen:.5g}"
    )

    # compress and verify both analyses
    sz = SZCompressor()
    result, recon = sz.roundtrip(
        density, CompressionConfig(error_bound=chosen)
    )
    measured = spectrum_relative_error(
        density.astype(np.float64), recon.astype(np.float64)
    )
    print(
        f"compressed {result.ratio:.1f}x; measured spectrum error "
        f"{measured:.4%} (predicted "
        f"{predicted_spectrum_relative_error(density, model.error_variance(chosen)):.4%})"
    )

    threshold = float(np.percentile(density, 99.0))
    halos_ref = find_halos(density.astype(np.float64), threshold)
    halos_new = find_halos(recon.astype(np.float64), threshold)
    f1 = halo_match_f1(halos_ref, halos_new)
    print(
        f"halo finder: {len(halos_ref)} halos before, "
        f"{len(halos_new)} after, match F1 = {f1:.3f}"
    )


if __name__ == "__main__":
    main()
