"""Figure 10: rate-distortion curves per predictor + selection crossover.

Use-case 1 on RTM: the estimated rate-distortion curve of each predictor
against the measured curve, and the bit-rate where the preferred
predictor switches (the paper finds the model's predicted switch at 1.89
bits inside the measured bracket [1.47, 1.93]).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.analysis.metrics import psnr
from repro.compressor import CompressionConfig, SZCompressor
from repro.core.accuracy import estimation_accuracy
from repro.datasets import load_field
from repro.usecases.predictor_selection import PredictorSelector
from repro.utils.tables import format_table

FRACTIONS = (1e-5, 1e-4, 1e-3, 1e-2, 5e-2)
PREDICTORS = ("lorenzo", "interpolation", "regression")


@pytest.fixture(scope="module")
def experiment():
    data = load_field("RTM", "snapshot_3000", size_scale=0.7)
    vrange = float(data.max() - data.min())
    sz = SZCompressor()
    selector = PredictorSelector(PREDICTORS).fit(data)

    rows = []
    measured_curves = {}
    for predictor in PREDICTORS:
        series = []
        for frac in FRACTIONS:
            eb = vrange * frac
            est = selector.models[predictor].estimate(eb)
            cfg = CompressionConfig(predictor=predictor, error_bound=eb)
            result, recon = sz.roundtrip(data, cfg)
            meas_psnr = psnr(data, recon)
            rows.append(
                (
                    predictor,
                    frac,
                    est.bitrate,
                    result.bit_rate,
                    est.psnr,
                    meas_psnr,
                )
            )
            series.append((result.bit_rate, meas_psnr))
        measured_curves[predictor] = series
    crossover = selector.crossover_bitrate(
        "lorenzo", "interpolation", bitrate_range=(0.5, 12.0)
    )
    return data, selector, rows, measured_curves, crossover


def test_fig10(benchmark, experiment, report):
    data, selector, rows, measured_curves, crossover = experiment
    report(
        format_table(
            [
                "predictor",
                "eb/range",
                "bitrate est",
                "bitrate meas",
                "PSNR est",
                "PSNR meas",
            ],
            rows,
            float_spec=".2f",
            title=(
                "Figure 10: rate-distortion per predictor (RTM).\n"
                "Expected shape: estimated curves track measured; "
                "interpolation preferred at low bit-rates."
            ),
        )
    )
    report(
        f"model-predicted lorenzo/interpolation crossover bit-rate: "
        f"{crossover} (paper: 1.89 within measured [1.47, 1.93])"
    )
    # estimates accurate per predictor (the sparse RTM field is the
    # hardest case for the RLE-approximated lossless stage, hence the
    # looser rate threshold than Table II's averages)
    for predictor in PREDICTORS:
        sel = [r for r in rows if r[0] == predictor]
        acc_rate = estimation_accuracy(
            [r[3] for r in sel], [r[2] for r in sel]
        )
        acc_psnr = estimation_accuracy(
            [r[5] for r in sel], [r[4] for r in sel]
        )
        assert acc_rate > 0.6, predictor
        assert acc_psnr > 0.9, predictor

    # the model's low-rate choice is measured-near-optimal: its measured
    # PSNR at 1.5 bits/pt is within 1.5 dB of the best predictor's
    low_rate_choice = selector.select_for_bitrate(1.5).predictor
    measured_at_low = {}
    for predictor, series in measured_curves.items():
        rates = np.array([s[0] for s in series])
        psnrs = np.array([s[1] for s in series])
        order = np.argsort(rates)
        measured_at_low[predictor] = float(
            np.interp(1.5, rates[order], psnrs[order])
        )
    best = max(measured_at_low.values())
    assert measured_at_low[low_rate_choice] >= best - 1.5

    benchmark(lambda: selector.select_for_bitrate(2.0))
