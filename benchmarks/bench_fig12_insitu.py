"""Figure 12: per-timestep error-bound optimization for RTM.

Use-case 3: the stacked RTM image is analysed over all timesteps, so the
tuner balances each timestep's bound against its contribution to the
aggregate quality.  The paper reports +13% compression ratio at equal
post-hoc quality, or +31% quality at equal ratio, over a uniform bound.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.datasets import wave_snapshots
from repro.usecases.insitu import PartitionTuner
from repro.utils.tables import format_table

TARGET_PSNR = 60.0


@pytest.fixture(scope="module")
def experiment():
    snaps = wave_snapshots(
        (40, 40, 40), n_snapshots=8, steps_between=8, seed=13
    )
    tuner = PartitionTuner(predictor="lorenzo", grid_points=40).fit(
        list(snaps)
    )
    tuned = tuner.compress_for_psnr(TARGET_PSNR)

    # uniform baseline achieving (at least) the same measured quality
    uniform = None
    uniform_eb = None
    for eb in sorted(tuner.optimizer.grid, reverse=True):
        candidate = tuner.compress_uniform(float(eb))
        if candidate.measured_psnr >= tuned.measured_psnr - 0.2:
            uniform = candidate
            uniform_eb = float(eb)
            break
    assert uniform is not None

    # quality-at-equal-rate comparison, in model space: give the tuner
    # the uniform plan's *estimated* bit budget so both sides optimize
    # against the same model
    uniform_est_bits = tuner.optimizer.uniform_plan(
        uniform_eb
    ).total_bits
    tuned_at_rate = tuner.compress_for_bitrate(uniform_est_bits)
    return snaps, tuned, uniform, tuned_at_rate


def test_fig12(benchmark, experiment, report):
    snaps, tuned, uniform, tuned_at_rate = experiment
    rows = [
        (
            i,
            eb,
            est_bits,
            result.bit_rate,
        )
        for i, (eb, est_bits, result) in enumerate(
            zip(tuned.plan.error_bounds, tuned.plan.bitrates, tuned.results)
        )
    ]
    report(
        format_table(
            ["timestep", "optimized eb", "est bits/pt", "meas bits/pt"],
            rows,
            float_spec=".4f",
            title=(
                "Figure 12: per-timestep optimized error bounds (RTM, "
                f"target aggregate PSNR {TARGET_PSNR} dB).\nExpected "
                "shape: bounds vary across timesteps, trading early "
                "sparse snapshots against late energetic ones."
            ),
        )
    )
    ratio_gain = uniform.measured_bitrate / tuned.measured_bitrate
    quality_gain = tuned_at_rate.measured_psnr - uniform.measured_psnr
    report(
        f"tuned: {tuned.measured_bitrate:.3f} b/pt @ "
        f"{tuned.measured_psnr:.2f} dB | uniform: "
        f"{uniform.measured_bitrate:.3f} b/pt @ "
        f"{uniform.measured_psnr:.2f} dB\n"
        f"extra compression at equal quality: {100 * (ratio_gain - 1):.1f}%"
        f" (paper: +13%)\nextra quality at equal rate: "
        f"{quality_gain:+.2f} dB (paper: +31% quality metric)"
    )
    assert tuned.measured_psnr >= TARGET_PSNR - 1.0
    assert len(set(tuned.plan.error_bounds)) > 1
    assert ratio_gain > 0.95  # at least competitive, typically >1

    benchmark(
        lambda: PartitionTuner(grid_points=15)
        .fit(list(snaps[:3]))
        .optimizer.minimize_bits_for_psnr(TARGET_PSNR)
    )
