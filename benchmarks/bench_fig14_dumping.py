"""Figure 14: parallel data-dumping time — Traditional vs TAE vs Model.

The end-to-end data-management result on the simulated 8-node/128-rank
cluster (throughputs calibrated by real single-process runs, see
DESIGN.md §3): per-snapshot dump time split into optimization,
compression and I/O.  Paper: the model-based pipeline cuts total dumping
time by up to 3.4x vs the traditional offline bound and up to 2.2x vs
in-situ trial-and-error, with a visibly lower worst-case dump.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.datasets import wave_snapshots
from repro.factory import CodecFactory
from repro.storage.cluster import (
    ClusterSimulator,
    ClusterSpec,
    ThroughputProfile,
)
from repro.usecases.baselines import offline_worst_case_error_bound
from repro.utils.tables import format_table

TARGET_PSNR = 56.0


@pytest.fixture(scope="module")
def experiment():
    snaps = wave_snapshots(
        (40, 40, 40), n_snapshots=6, steps_between=8, seed=37
    )
    factory = CodecFactory(predictor="lorenzo")
    vrange = max(float(np.ptp(s)) for s in snaps)
    candidates = [vrange * 10 ** (-e) for e in (1, 2, 3, 4, 5)]
    config = factory.config(candidates[2])

    # the traditional bound comes from the offline worst-case study
    offline = offline_worst_case_error_bound(
        list(snaps), config, candidates, TARGET_PSNR
    )

    # Bandwidth/latency scaled so the dump is I/O-bound like the paper's
    # Lustre runs (raw dump ~0.17 s per 256 KiB snapshot, latency well
    # below the compressed write time).
    spec = ClusterSpec(
        n_nodes=8,
        ranks_per_node=16,
        aggregate_write_bandwidth=1.5e6,
        write_latency=0.001,
    )
    profile = ThroughputProfile.measure(
        snaps[-1], config.with_error_bound(candidates[2]), TARGET_PSNR
    )
    sim = ClusterSimulator(spec, profile, config)

    rows = []
    totals = {"traditional": [], "tae": [], "model": []}
    for i, snap in enumerate(snaps):
        reports = {
            "traditional": sim.dump_traditional(
                snap, i, offline.chosen_error_bound
            ),
            "tae": sim.dump_tae(snap, i, candidates, TARGET_PSNR),
            "model": sim.dump_model(snap, i, TARGET_PSNR),
        }
        for strategy, rep in reports.items():
            totals[strategy].append(rep.total_time)
            rows.append(
                (
                    i,
                    strategy,
                    rep.times.get("optimize"),
                    rep.times.get("compress"),
                    rep.times.get("io"),
                    rep.total_time,
                )
            )
    raw_time = sim.baseline_raw_dump_time(snaps[-1])
    return rows, totals, raw_time


def test_fig14(benchmark, experiment, report):
    rows, totals, raw_time = experiment
    report(
        format_table(
            ["snapshot", "strategy", "Op s", "Comp s", "I/O s", "total s"],
            rows,
            float_spec=".4f",
            title=(
                "Figure 14: simulated 128-rank dump time per snapshot "
                "(Tr=traditional offline bound, TAE=in-situ trial-and-"
                "error, Model=ratio-quality model).\nExpected shape: "
                "Model lowest and most stable; TAE pays optimization; "
                "Tr pays I/O for its worst-case bound."
            ),
        )
    )
    tr = np.array(totals["traditional"])
    tae = np.array(totals["tae"])
    model = np.array(totals["model"])
    report(
        f"totals: Tr {tr.sum():.3f}s  TAE {tae.sum():.3f}s  Model "
        f"{model.sum():.3f}s  (raw dump per snapshot {raw_time:.3f}s)\n"
        f"speedup vs Tr: {tr.sum() / model.sum():.2f}x (paper <=3.4x), "
        f"vs TAE: {tae.sum() / model.sum():.2f}x (paper <=2.2x)\n"
        f"max dump: Tr {tr.max():.3f}s TAE {tae.max():.3f}s Model "
        f"{model.max():.3f}s"
    )
    assert model.sum() < tr.sum()
    assert model.sum() < tae.sum()
    assert model.max() <= tae.max()
    # compression is always worth it vs raw dumping
    assert model.mean() < raw_time

    snap = wave_snapshots((32, 32, 32), 2, steps_between=10, seed=41)[-1]
    config = CodecFactory().config(1e-4)
    profile = ThroughputProfile.measure(snap, config)
    sim = ClusterSimulator(ClusterSpec(), profile, config)
    benchmark(lambda: sim.dump_model(snap, 0, TARGET_PSNR))
