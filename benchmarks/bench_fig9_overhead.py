"""Figure 9: optimization cost — modeling vs trial-and-error.

The paper's headline overhead result: evaluating 7 candidate error
bounds with 2 predictor candidates costs the trial-and-error approach a
full compression run per combination, while the model samples once per
predictor and estimates analytically — 18.7x cheaper on average across
3 RTM snapshots.  Wall-clock is measured here (not simulated), with the
stage breakdown of the TAE cost (prediction / Huffman / lossless).
"""

from __future__ import annotations

import time

import pytest

from repro.compressor import CompressionConfig
from repro.core.model import RatioQualityModel
from repro.datasets import load_field
from repro.usecases.baselines import trial_and_error_sweep
from repro.utils.tables import format_table

N_BOUNDS = 7
PREDICTORS = ("lorenzo", "interpolation")
SNAPSHOTS = ("snapshot_1000", "snapshot_2000", "snapshot_3000")


@pytest.fixture(scope="module")
def comparison():
    rows = []
    speedups = []
    for name in SNAPSHOTS:
        data = load_field("RTM", name, size_scale=0.7)
        vrange = float(data.max() - data.min())
        bounds = [vrange * 10 ** (-6 + i * 0.7) for i in range(N_BOUNDS)]

        start = time.perf_counter()
        tae_breakdown = None
        for predictor in PREDICTORS:
            sweep = trial_and_error_sweep(
                data,
                CompressionConfig(predictor=predictor),
                bounds,
                measure_quality=False,
            )
            if tae_breakdown is None:
                tae_breakdown = sweep.times
            else:
                tae_breakdown.merge(sweep.times)
        tae_time = time.perf_counter() - start

        start = time.perf_counter()
        for predictor in PREDICTORS:
            model = RatioQualityModel(predictor=predictor).fit(data)
            for eb in bounds:
                model.estimate(eb)
        model_time = time.perf_counter() - start

        speedup = tae_time / model_time
        speedups.append(speedup)
        rows.append(
            (
                name,
                tae_time,
                tae_breakdown.get("predict_quantize"),
                tae_breakdown.get("huffman"),
                tae_breakdown.get("lossless"),
                model_time,
                speedup,
            )
        )
    return rows, speedups


def test_fig9(benchmark, comparison, report):
    rows, speedups = comparison
    report(
        format_table(
            [
                "snapshot",
                "TAE total s",
                "TAE predict s",
                "TAE huffman s",
                "TAE lossless s",
                "model s",
                "speedup",
            ],
            rows,
            float_spec=".3f",
            title=(
                "Figure 9: optimization cost, trial-and-error vs model "
                f"({N_BOUNDS} bounds x {len(PREDICTORS)} predictors, RTM"
                ").\nPaper: 18.7x average speedup; TAE dominated by "
                "Huffman + lossless stages."
            ),
        )
    )
    mean_speedup = sum(speedups) / len(speedups)
    report(f"mean speedup: {mean_speedup:.1f}x (paper: 18.7x)")
    assert mean_speedup > 5.0  # same order as the paper's 18.7x

    data = load_field("RTM", "snapshot_3000", size_scale=0.5)
    benchmark(lambda: RatioQualityModel().fit(data))
