"""Figure 11: memory-budget compression — consumed vs assigned space.

Use-case 2: 15 groups with randomly drawn byte budgets are compressed
through the model (80% target headroom).  The paper's result: measured
consumption clusters around the 80% target and only ~5% of groups
overflow the assigned space.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.datasets import wave_snapshots
from repro.usecases.memory_target import MemoryBudgetCompressor
from repro.utils.tables import format_table

N_GROUPS = 15


@pytest.fixture(scope="module")
def groups():
    rng = np.random.default_rng(42)
    # late-time snapshots: the wavefield has filled the domain, matching
    # the dense RTM volumes of the paper's Fig. 11
    snaps = wave_snapshots(
        (44, 44, 44), n_snapshots=8, steps_between=22, seed=5
    )
    compressor = MemoryBudgetCompressor(predictor="lorenzo")
    rows = []
    for group in range(N_GROUPS):
        snap = snaps[rng.integers(4, len(snaps))]
        divisor = float(rng.uniform(4, 40))
        budget = max(int(snap.nbytes / divisor), 2048)
        reportp = compressor.compress(snap, budget)
        rows.append(
            (
                group,
                budget,
                reportp.result.compressed_bytes,
                reportp.utilization,
                reportp.fits,
            )
        )
    return rows


def test_fig11(benchmark, groups, report):
    report(
        format_table(
            ["group", "assigned B", "measured B", "ratio", "fits"],
            groups,
            float_spec=".3f",
            title=(
                "Figure 11: measured/assigned space over 15 random "
                "groups (RTM snapshots, 80% target).\nPaper: most "
                "groups land near/above 80% yet within budget; ~5% "
                "overflow."
            ),
        )
    )
    utilizations = np.array([g[3] for g in groups])
    fits = np.array([g[4] for g in groups])
    overflow_rate = 1.0 - fits.mean()
    report(
        f"mean utilization {utilizations.mean():.3f}, overflow rate "
        f"{overflow_rate:.2%} (paper: ~5%)"
    )
    assert overflow_rate <= 0.2
    # the model errs on the conservative side for wave data (the real
    # dictionary coder beats the RLE approximation), so utilization sits
    # below the 80% target but never endangers the budget
    assert 0.3 <= utilizations.mean() <= 1.0

    snap = wave_snapshots((32, 32, 32), 3, steps_between=10, seed=6)[-1]
    compressor = MemoryBudgetCompressor()
    benchmark(lambda: compressor.compress(snap, snap.nbytes // 10))
