"""Figure 7: SSIM estimation vs measurement (CESM and RTM).

The paper plots (1 - SSIM) on a log scale to expose the low-error-bound
regime, on the CESM climate field and the (Aramco) RTM field.  The model
is Eq. 15 with the refined error variance.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.analysis.metrics import ssim_global
from repro.compressor import CompressionConfig, SZCompressor
from repro.core.accuracy import estimation_accuracy
from repro.core.model import RatioQualityModel
from repro.datasets import load_field
from repro.utils.tables import format_table

FRACTIONS = (1e-4, 1e-3, 1e-2, 3e-2, 0.1)
FIELDS = (("CESM", "TS", 0.5), ("RTM", "snapshot_3000", 0.6))


@pytest.fixture(scope="module")
def sweep():
    sz = SZCompressor()
    out = {}
    for dataset, field, scale in FIELDS:
        data = load_field(dataset, field, size_scale=scale)
        vrange = float(data.max() - data.min())
        model = RatioQualityModel(predictor="lorenzo").fit(data)
        series = []
        for frac in FRACTIONS:
            eb = vrange * frac
            _, recon = sz.roundtrip(
                data, CompressionConfig(error_bound=eb)
            )
            est = model.estimate(eb).ssim
            meas = ssim_global(data, recon)
            series.append((frac, est, meas, 1 - est, 1 - meas))
        out[f"{dataset}/{field}"] = series
    return out


def test_fig7(benchmark, sweep, report):
    for name, series in sweep.items():
        report(
            format_table(
                ["eb/range", "SSIM est", "SSIM meas", "1-est", "1-meas"],
                series,
                float_spec=".6f",
                title=(
                    f"Figure 7 ({name}): SSIM estimation (Eq. 15).\n"
                    "Expected shape: 1-SSIM tracks across orders of "
                    "magnitude; slight deviation at the extremes "
                    "(paper notes the same)."
                ),
            )
        )
        est = np.array([s[1] for s in series])
        meas = np.array([s[2] for s in series])
        acc = estimation_accuracy(meas, est)
        report(f"{name}: SSIM accuracy {acc:.4f} (paper avg 94.4%)")
        assert acc > 0.9
        # monotone degradation in both series
        assert list(meas) == sorted(meas, reverse=True)
        assert list(est) == sorted(est, reverse=True)

    data = load_field("CESM", "TS", size_scale=0.3)
    model = RatioQualityModel().fit(data)
    vrange = float(data.max() - data.min())
    benchmark(lambda: model.estimate(vrange * 1e-2).ssim)
