"""Table I: the evaluated dataset suite.

Regenerates the dataset inventory (name, dims, size, description,
format) for the synthetic stand-ins at their benchmark scale, plus the
generation throughput of the heaviest generator.
"""

from __future__ import annotations

import numpy as np

from repro.datasets import DATASETS, load_field
from repro.utils.tables import format_table

SCALE = 0.5


def _human(nbytes: float) -> str:
    for unit in ("B", "KB", "MB", "GB"):
        if nbytes < 1024:
            return f"{nbytes:.1f}{unit}"
        nbytes /= 1024
    return f"{nbytes:.1f}TB"


def test_table1(benchmark, report):
    rows = []
    for spec in DATASETS.values():
        field = spec.fields[0]
        data = field.load(SCALE)
        total = sum(
            int(np.prod([max(8, int(round(n * SCALE))) for n in f.shape]))
            * 4
            for f in spec.fields
        )
        rows.append(
            (
                spec.name,
                f"{spec.dims}D",
                _human(total),
                spec.description,
                spec.fmt,
                "x".join(str(s) for s in data.shape),
            )
        )
    report(
        format_table(
            ["Name", "Dim", "Size", "Description", "Format", "BenchShape"],
            rows,
            title="Table I: tested datasets (synthetic stand-ins, scale=0.5)",
        )
    )
    benchmark(lambda: load_field("CESM", "TS", SCALE))
