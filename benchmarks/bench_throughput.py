"""Codec throughput benchmark, tracked across PRs.

Measures end-to-end compress/decompress MB/s on a 4M-point 3-D field
(abs 1e-2, lorenzo + zstd_like) for the single-stream (v2), chunked
(v3) and tiled (v4) container layouts, prints the table through the
``report`` fixture and appends the numbers to ``BENCH_throughput.json``
at the repo root so the performance trajectory is visible across PRs.

The tiled-streaming mode additionally records **peak RSS**, measured in
a subprocess (``ru_maxrss``) so the number is untainted by the rest of
the benchmark run: the tiled path memmaps the input and streams tiles
to disk, so its peak resident set stays at a few tiles, versus the
whole-array (plus intermediates) footprint of the flat pipeline.  It
also records a 1%-hyperslab region decode with the tile-decode counter,
demonstrating that partial reads touch only the intersecting tiles.

The **serve_latency** mode measures the serving subsystem
(:mod:`repro.service`): a threaded HTTP server over a 16-tile halo
dataset answers hyperslab reads while the benchmark records QPS and
p50/p99 latency with a cold versus warm decoded-tile cache.  The
acceptance criterion is a >= 3x median speedup from the cache.

The **parallel_scaling** mode sweeps the execution backends (serial /
thread / shared-memory process pool) over workers={1,2,4} on a
1M-point tiled field, asserting that every combination produces
byte-identical containers and — on machines with >= 4 cores — that the
process backend compresses at least 1.5x faster than serial at 4
workers.  The CI ``perf-smoke`` job runs exactly this mode.

The **v5_adaptive** mode runs the model-driven per-tile planner on a
heterogeneous field (smooth background + an injected halo-dense
lognormal region) and compares the adaptive v5 container against the
*best uniform v4 config at equal PSNR* — each uniform predictor's bound
is bisected until its measured PSNR matches the adaptive run's.  The
recorded ``equal_psnr_gain`` is the acceptance metric: adaptive must
spend at least 5% fewer bytes than the best uniform baseline.  (The
measured gain is sensitive to the bisection resolution because the
uniform byte/PSNR curve has a knee near the adaptive operating point;
the 12-step bisection below measures ~1.078 deterministically.  The
1.0834 recorded in the earliest trajectory entry came from a pre-final
state of the PR-3 codec — replaying the committed PR-3/PR-4 trees
reproduces today's uniform bytes, not that entry's.)  The mode also
records the planner's fit/cluster counters and a cross-snapshot
plan-cache replay timing.

The **snapshot_stream** mode measures the temporal snapshot-stream
subsystem (v6 containers + :class:`repro.service.ArrayStore` chains) on
a ``wave_snapshots`` stream: the traditional baseline compresses every
snapshot from scratch under the offline worst-case bound for the PSNR
target, while the stream arm picks a per-snapshot model bound and
encodes non-keyframe snapshots as temporal deltas against the decoded
previous snapshot (keyframe every 4).  Recorded: the delta-vs-scratch
total byte ratio (acceptance: >= 1.25x at the same per-snapshot PSNR
target), per-tile temporal/spatial choice counts, chain-read latency
(cold vs warm decoded-tile cache at the deepest chain position), and
the per-version chain depth, which must stay bounded by the keyframe
interval.  Chain decodes are asserted byte-identical across the
serial / thread / process executor backends.  The CI
``snapshot-stream`` job runs exactly this mode.

The **chaos** mode exercises the fault-tolerance subsystem end to end:
a deterministic :class:`FaultInjector` (seeded, so every run injects
the same schedule) drops, truncates or delays ~35% of HTTP responses
while a :class:`RetryPolicy`-armed client replays the serving
workload.  Recorded: availability (fraction of requests that
ultimately succeeded), mean attempts per served request, total backoff
time, and the container checksum overhead.  The acceptance criteria
are the detected-or-correct guarantee — **zero** responses whose bytes
differ from ground truth — availability >= 90% despite the fault
storm, and checksum overhead <= 1% of container bytes.  The CI
``chaos-smoke`` job runs exactly this mode plus the fault-injection
test suite.

The **planner_perf** mode exercises the vectorized planner's fit-reuse
machinery on a population-structured snapshot (distinct quiet / mild /
turbulent / oscillatory regions — the regime tile clustering is built
for): it asserts the planned-tiles/fits ratio stays >= 4x, that
cluster-level fit reuse is quality-neutral against per-tile fits
(bytes within 2%, PSNR within 0.15 dB), and that replanning a second
statistically matching snapshot hits the :class:`PlannerCache` with a
>= 5x planning speedup, keeping cached adaptive compression within 3x
of a uniform v4 compress end to end.  The CI ``planner-perf`` job runs
exactly this mode.

Reference points on this workload: the seed implementation ran at
14.4 s compress / 3.5 s decompress (~2.3 MB/s); the chunked vectorized
pipeline targets >= 5x both ways with the ratio within 5%.
"""

from __future__ import annotations

import json
import os
import subprocess
import sys
import time

import numpy as np

from repro.compressor import CompressionConfig, SZCompressor, TiledCompressor
from repro.utils.tables import format_table

SHAPE = (128, 128, 256)  # 4M points
ERROR_BOUND = 1e-2
TILE_SHAPE = (32, 32, 256)  # 16 tiles, ~2 MB each
#: ~1% of the points, straddling 4 of the 16 tiles
ROI = "48:80,40:72,100:141"
SRC_DIR = os.path.join(
    os.path.dirname(os.path.dirname(os.path.abspath(__file__))), "src"
)
TRAJECTORY_PATH = os.path.join(
    os.path.dirname(os.path.dirname(os.path.abspath(__file__))),
    "BENCH_throughput.json",
)

MODES = {
    "v2_single": dict(chunk_size=None, workers=None),
    "v3_chunked": dict(chunk_size=1 << 20, workers=None),
    "v3_chunked_w4": dict(chunk_size=1 << 20, workers=4),
}

# Runs in a fresh interpreter so the peak-RSS reading reflects exactly
# one compression strategy.  VmHWM (reset on exec) rather than
# ru_maxrss, which would inherit the parent's footprint through the
# fork-to-exec window.  argv: field.npy out.rqsz tiled|flat
_RSS_CHILD = r"""
import json, resource, sys, time
import numpy as np
from repro.compressor import CompressionConfig, SZCompressor, TiledCompressor


def peak_rss_mb():
    try:
        with open("/proc/self/status") as fh:
            for line in fh:
                if line.startswith("VmHWM:"):
                    return int(line.split()[1]) / 1024.0
    except OSError:
        pass
    return resource.getrusage(resource.RUSAGE_SELF).ru_maxrss / 1024.0


field_path, out_path, strategy = sys.argv[1:4]
shape = {shape}
config = CompressionConfig(
    predictor="lorenzo",
    error_bound={eb},
    lossless="zstd_like",
    chunk_size={chunk},
    tile_shape={tile} if strategy == "tiled" else None,
)
start = time.perf_counter()
if strategy == "tiled":
    data = np.load(field_path, mmap_mode="r")
    result = TiledCompressor(workers=4).compress(data, config, out=out_path)
    compressed = result.compressed_bytes
else:
    data = np.load(field_path)
    result = SZCompressor(workers=4).compress(data, config)
    with open(out_path, "wb") as fh:
        fh.write(result.blob)
    compressed = result.compressed_bytes
elapsed = time.perf_counter() - start
print(json.dumps({{
    "compress_s": elapsed,
    "compressed_bytes": compressed,
    "peak_rss_mb": peak_rss_mb(),
}}))
"""


def _run_rss_child(field_path: str, out_path: str, strategy: str) -> dict:
    env = dict(os.environ)
    env["PYTHONPATH"] = SRC_DIR + os.pathsep + env.get("PYTHONPATH", "")
    script = _RSS_CHILD.format(
        shape=SHAPE,
        eb=ERROR_BOUND,
        chunk=1 << 20,
        tile=TILE_SHAPE,
    )
    proc = subprocess.run(
        [sys.executable, "-c", script, field_path, out_path, strategy],
        capture_output=True,
        text=True,
        env=env,
        check=True,
    )
    return json.loads(proc.stdout)


def _field() -> np.ndarray:
    """Smooth random-walk field: representative quantization statistics."""
    rng = np.random.default_rng(0)
    data = np.cumsum(rng.standard_normal(SHAPE), axis=-1)
    return data + np.cumsum(rng.standard_normal(SHAPE), axis=0)


# -- adaptive (v5) workload ----------------------------------------------------

#: heterogeneous field: smooth background + injected halo region
ADAPTIVE_SHAPE = (256, 256)
ADAPTIVE_TILE = (32, 32)
#: nominal bound ~= background std: just below background-tile
#: saturation, where per-tile bound allocation has bits to harvest
ADAPTIVE_EB = 1.0
#: required byte advantage over the best uniform config at equal PSNR
ADAPTIVE_MIN_GAIN = 1.05


def _hetero_field() -> np.ndarray:
    """Smooth background with a compact halo-dense (lognormal) region."""
    from repro.datasets.generators import (
        gaussian_random_field,
        lognormal_field,
    )

    shape = ADAPTIVE_SHAPE
    bg = gaussian_random_field(shape, slope=4.0, seed=7).astype(np.float64)
    hs = tuple(n // 4 for n in shape)
    halos = lognormal_field(hs, slope=2.0, seed=8, contrast=3.0)
    pad = tuple((n // 8, n - h - n // 8) for n, h in zip(shape, hs))
    return (bg + np.pad(0.5 * halos.astype(np.float64), pad)).astype(
        np.float32
    )


def _measure_adaptive() -> dict:
    """v5 adaptive vs best uniform v4 at equal measured PSNR."""
    from repro.analysis.metrics import psnr
    from repro.compressor import PlannerCache

    field = _hetero_field()
    mb = field.nbytes / 1e6
    tc = TiledCompressor()

    start = time.perf_counter()
    adaptive = tc.compress(
        field,
        CompressionConfig(
            error_bound=ADAPTIVE_EB,
            tile_shape=ADAPTIVE_TILE,
            adaptive=True,
        ),
    )
    compress_s = time.perf_counter() - start

    # cross-snapshot plan replay: same field statistics -> cache hit
    cache = PlannerCache()
    tcc = TiledCompressor(plan_cache=cache)
    cfg = CompressionConfig(
        error_bound=ADAPTIVE_EB, tile_shape=ADAPTIVE_TILE, adaptive=True
    )
    fresh = tcc.compress(field, cfg, dataset="halo")
    start = time.perf_counter()
    cached = tcc.compress(field, cfg, dataset="halo")
    cached_compress_s = time.perf_counter() - start
    assert cached.plan.stats.cache == "hit"
    start = time.perf_counter()
    recon = tc.decompress(adaptive.blob)
    decompress_s = time.perf_counter() - start
    ada_psnr = psnr(field, recon)

    uniform: dict = {}
    for predictor in ("lorenzo", "interpolation"):
        lo, hi = ADAPTIVE_EB / 16, ADAPTIVE_EB * 16
        best = None
        for _ in range(12):
            mid = float(np.sqrt(lo * hi))
            result = tc.compress(
                field,
                CompressionConfig(
                    predictor=predictor,
                    error_bound=mid,
                    tile_shape=ADAPTIVE_TILE,
                ),
            )
            measured = psnr(field, tc.decompress(result.blob))
            if measured >= ada_psnr:
                best = (result.compressed_bytes, measured, mid)
                lo = mid
            else:
                hi = mid
        if best is not None:
            uniform[predictor] = {
                "bytes": best[0],
                "ratio": round(field.nbytes / best[0], 4),
                "psnr": round(best[1], 3),
                "error_bound": round(best[2], 6),
            }
    assert uniform, (
        "no uniform config reached the adaptive run's PSNR "
        f"({ada_psnr:.2f} dB) within the bisection span"
    )
    best_uniform = min(m["bytes"] for m in uniform.values())

    return {
        "field": {
            "shape": list(ADAPTIVE_SHAPE),
            "tile_shape": list(ADAPTIVE_TILE),
            "nominal_eb": ADAPTIVE_EB,
        },
        "compress_s": round(compress_s, 4),
        "decompress_s": round(decompress_s, 4),
        "compress_mb_s": round(mb / compress_s, 2),
        "decompress_mb_s": round(mb / decompress_s, 2),
        "bytes": adaptive.compressed_bytes,
        "ratio": round(field.nbytes / adaptive.compressed_bytes, 4),
        "psnr": round(ada_psnr, 3),
        "predictor_counts": adaptive.plan.predictor_counts(),
        "planner": adaptive.plan.stats.to_json(),
        "plan_s": round(adaptive.plan.stats.plan_seconds, 4),
        "cached_plan_s": round(cached.plan.stats.plan_seconds, 5),
        "cached_compress_s": round(cached_compress_s, 4),
        "plan_cache_speedup": round(
            fresh.plan.stats.plan_seconds
            / max(cached.plan.stats.plan_seconds, 1e-9),
            1,
        ),
        "uniform_equal_psnr": uniform,
        "equal_psnr_gain": round(
            best_uniform / adaptive.compressed_bytes, 4
        ),
    }


# -- planner fit-reuse / plan-cache workload -----------------------------------

#: population-structured snapshot: 64 tiles in four homogeneous
#: regions, the regime the stat-signature clustering targets
PLANNER_SHAPE = (256, 256)
PLANNER_TILE = (32, 32)
PLANNER_EB = 0.5
#: acceptance: planned-tiles / fits ratio from cluster-level reuse
PLANNER_MIN_FIT_RATIO = 4.0
#: acceptance: plan-cache hit speedup on a matching second snapshot
PLANNER_MIN_CACHE_SPEEDUP = 5.0
#: acceptance: cached adaptive compress vs a uniform v4 compress
PLANNER_MAX_VS_UNIFORM = 3.0


def _population_field(seed: int = 7, jitter: float = 0.0) -> np.ndarray:
    """Quiet / mild / turbulent / oscillatory quadrant populations.

    ``jitter`` adds small extra noise so consecutive "snapshots" are
    statistically close but not identical (the plan-cache use case).
    """
    from repro.datasets.generators import gaussian_random_field

    shape = PLANNER_SHAPE
    rng = np.random.default_rng(seed)
    f = gaussian_random_field(shape, slope=4.0, seed=7).astype(
        np.float64
    ) * 10.0
    h, w = shape[0] // 2, shape[1] // 2
    f[:h, :w] += rng.normal(0, 0.2, (h, w))
    f[:h, w:] += rng.normal(0, 1.5, (h, w))
    f[h:, :w] += rng.normal(0, 6.0, (h, w))
    f[h:, w:] += (
        4.0
        * np.sin(np.arange(w) * 0.9)[None, :]
        * np.cos(np.arange(h) * 0.7)[:, None]
    )
    if jitter:
        f += rng.normal(0, jitter, shape)
    return f.astype(np.float32)


def _measure_planner_perf() -> dict:
    """Fit-reuse ratio, reuse quality parity, and plan-cache replay."""
    from dataclasses import replace

    from repro.analysis.metrics import psnr
    from repro.compressor import PlannerCache

    snap0 = _population_field(seed=7)
    config = CompressionConfig(
        error_bound=PLANNER_EB, tile_shape=PLANNER_TILE, adaptive=True
    )
    tc = TiledCompressor()

    # uniform v4 reference for the end-to-end throughput bound
    ucfg = CompressionConfig(
        predictor="lorenzo",
        error_bound=PLANNER_EB,
        tile_shape=PLANNER_TILE,
    )
    tc.compress(snap0, ucfg)  # page-in / warm-up
    start = time.perf_counter()
    tc.compress(snap0, ucfg)
    uniform_compress_s = time.perf_counter() - start

    # clustered (default) vs per-tile fits: reuse must be ~free
    clustered = tc.compress(snap0, config)
    per_tile = tc.compress(snap0, replace(config, fit_clusters=0))
    cl_psnr = psnr(snap0, tc.decompress(clustered.blob))
    pt_psnr = psnr(snap0, tc.decompress(per_tile.blob))
    stats = clustered.plan.stats
    fit_ratio = stats.tiles_planned / stats.fits_performed

    # cross-snapshot plan cache: snapshot 1 is statistically close
    cache = PlannerCache()
    tcc = TiledCompressor(plan_cache=cache)
    first = tcc.compress(snap0, config, dataset="pop")
    snap1 = _population_field(seed=9, jitter=0.05)
    start = time.perf_counter()
    second = tcc.compress(snap1, config, dataset="pop")
    cached_compress_s = time.perf_counter() - start
    cache_speedup = first.plan.stats.plan_seconds / max(
        second.plan.stats.plan_seconds, 1e-9
    )
    # reuse never touches correctness: the per-tile bound holds on the
    # replayed plan exactly as on a fresh one
    recon1 = tcc.decompress(second.blob)
    max_err = float(np.max(np.abs(recon1.astype(np.float64) - snap1)))
    bound = max(c.error_bound for c in second.plan.choices)
    assert max_err <= bound * (1 + 1e-6)

    return {
        "field": {
            "shape": list(PLANNER_SHAPE),
            "tile_shape": list(PLANNER_TILE),
            "error_bound": PLANNER_EB,
        },
        "planner": stats.to_json(),
        "fit_ratio": round(fit_ratio, 2),
        "plan_s": round(stats.plan_seconds, 4),
        "clustered_bytes": clustered.compressed_bytes,
        "per_tile_bytes": per_tile.compressed_bytes,
        "reuse_byte_overhead": round(
            clustered.compressed_bytes / per_tile.compressed_bytes, 4
        ),
        "clustered_psnr": round(cl_psnr, 3),
        "per_tile_psnr": round(pt_psnr, 3),
        "cache_status": second.plan.stats.cache,
        "cached_plan_s": round(second.plan.stats.plan_seconds, 5),
        "plan_cache_speedup": round(cache_speedup, 1),
        "uniform_compress_s": round(uniform_compress_s, 4),
        "cached_compress_s": round(cached_compress_s, 4),
        "cached_vs_uniform": round(
            cached_compress_s / uniform_compress_s, 3
        ),
    }


def test_planner_perf(report):
    """Planner fit-reuse and plan-cache guardrails (CI planner-perf)."""
    perf = _measure_planner_perf()
    report(
        "planner_perf (population-structured 64-tile snapshot): "
        f"{perf['planner']['fits_performed']} fits for "
        f"{perf['planner']['tiles_planned']} tiles "
        f"(ratio {perf['fit_ratio']}x, "
        f"{perf['planner']['clusters']} clusters, "
        f"{perf['planner']['refits']} refits); "
        f"reuse byte overhead {perf['reuse_byte_overhead']}x; "
        f"plan cache {perf['cache_status']} -> "
        f"{perf['plan_cache_speedup']}x planning speedup, "
        f"cached adaptive compress {perf['cached_vs_uniform']}x a "
        "uniform v4 compress"
    )
    _append_trajectory(
        {
            "date": time.strftime("%Y-%m-%d %H:%M:%S"),
            "modes": {"planner_perf": perf},
        }
    )
    assert perf["fit_ratio"] >= PLANNER_MIN_FIT_RATIO
    # cluster-level reuse must be quality-neutral on clustered data
    assert perf["reuse_byte_overhead"] <= 1.02
    assert abs(perf["clustered_psnr"] - perf["per_tile_psnr"]) <= 0.15
    # a matching second snapshot replays the cached plan
    assert perf["cache_status"] == "hit"
    assert perf["plan_cache_speedup"] >= PLANNER_MIN_CACHE_SPEEDUP
    assert perf["cached_vs_uniform"] <= PLANNER_MAX_VS_UNIFORM


# -- temporal snapshot-stream workload -----------------------------------------

#: wavefield stream (fig13 cadence): 8 snapshots of a 64k-point volume
STREAM_SHAPE = (32, 32, 64)
STREAM_TILE = (16, 16, 32)
STREAM_SNAPSHOTS = 8
STREAM_STEPS_BETWEEN = 8
STREAM_SEED = 11
STREAM_TARGET_PSNR = 60.0
STREAM_KEYFRAME_INTERVAL = 4
#: half-decade candidate grid for the offline worst-case baseline
STREAM_EB_GRID = tuple(10.0**-e for e in (1.0, 1.5, 2.0, 2.5, 3.0, 3.5, 4.0))
#: acceptance: total bytes, from-scratch baseline vs the delta stream
STREAM_MIN_DELTA_GAIN = 1.25
#: PSNR slack on the worst snapshot (model bounds aim at the target)
STREAM_PSNR_SLACK = 2.0


def _stream_snapshots() -> list:
    from repro.datasets.generators import wave_snapshots

    return wave_snapshots(
        STREAM_SHAPE,
        n_snapshots=STREAM_SNAPSHOTS,
        steps_between=STREAM_STEPS_BETWEEN,
        seed=STREAM_SEED,
    )


def _measure_snapshot_stream(tmp_path) -> dict:
    """Delta stream vs from-scratch baseline at one PSNR target."""
    from repro.analysis.metrics import psnr
    from repro.compressor import TemporalCompressor
    from repro.factory import CodecFactory
    from repro.service import ArrayStore, TileLRUCache
    from repro.usecases.baselines import offline_worst_case_error_bound
    from repro.usecases.insitu import SnapshotPipeline

    snaps = _stream_snapshots()
    factory = CodecFactory(tile_shape=STREAM_TILE)

    # traditional baseline: one conservative bound that holds the PSNR
    # target on the worst snapshot, every snapshot re-encoded from
    # scratch (what an in-situ dump does without the stream subsystem)
    trad_eb = offline_worst_case_error_bound(
        snaps,
        factory.config(STREAM_EB_GRID[0]),
        STREAM_EB_GRID,
        STREAM_TARGET_PSNR,
    ).chosen_error_bound
    tiled = factory.tiled_compressor()
    trad_config = factory.config(trad_eb)
    trad_bytes = 0
    trad_worst = float("inf")
    for snap in snaps:
        result = tiled.compress(snap, trad_config)
        trad_bytes += result.compressed_bytes
        trad_worst = min(
            trad_worst, psnr(snap, tiled.decompress(result.blob))
        )

    # stream arm: per-snapshot model bound + temporal deltas, replayed
    # once through the pipeline (quality accounting) and once through an
    # ArrayStore chain (byte accounting + chain reads)
    stream = SnapshotPipeline(
        target_psnr=STREAM_TARGET_PSNR,
        factory=CodecFactory(
            tile_shape=STREAM_TILE,
            temporal=True,
            keyframe_interval=STREAM_KEYFRAME_INTERVAL,
        ),
    )
    for snap in snaps:
        stream.process(snap)
    stream_worst = min(r.psnr for r in stream.records)

    store = ArrayStore(
        str(tmp_path / "stream_store"),
        cache=TileLRUCache(byte_budget=32 << 20),
    )
    try:
        for snap, record in zip(snaps, stream.records):
            store.put_snapshot(
                "wave",
                snap,
                factory.config(record.error_bound),
                keyframe_interval=STREAM_KEYFRAME_INTERVAL,
            )
        chain_bytes = store.info("wave")["total_compressed_bytes"]
        versions = store.versions("wave")

        # every version must hold its own absolute bound, and decode
        # through a chain no deeper than the keyframe interval
        full = tuple(slice(0, n) for n in STREAM_SHAPE)
        depths = []
        for version, (snap, record) in enumerate(
            zip(snaps, stream.records)
        ):
            region = store.read_region("wave", full, version=version)
            max_err = float(
                np.max(
                    np.abs(
                        region.data.astype(np.float64)
                        - snap.astype(np.float64)
                    )
                )
            )
            assert max_err <= record.error_bound * (1 + 1e-9), (
                f"version {version} exceeds its bound: "
                f"{max_err} > {record.error_bound}"
            )
            depths.append(region.chain_depth)

        # chain-read latency: deepest chain position, cold vs warm
        deepest = max(range(len(depths)), key=lambda v: (depths[v], v))
        store.cache.clear()
        start = time.perf_counter()
        store.read_region("wave", full, version=deepest)
        cold_chain_ms = (time.perf_counter() - start) * 1e3
        start = time.perf_counter()
        store.read_region("wave", full, version=deepest)
        warm_chain_ms = (time.perf_counter() - start) * 1e3
        store.cache.clear()
        start = time.perf_counter()
        store.read_region("wave", full, version=0)
        cold_keyframe_ms = (time.perf_counter() - start) * 1e3

        # chain decodes are an execution detail: every backend must
        # reproduce the store's bytes exactly, reference by reference
        expected = [
            store.read_full("wave", version=v).tobytes()
            for v in range(len(snaps))
        ]
        files = [
            os.path.join(store.root, record["file"])
            for record in versions
        ]
    finally:
        store.close()

    for backend in ("serial", "thread", "process"):
        codec = TemporalCompressor(workers=2, backend=backend)
        reference = None
        for version, path in enumerate(files):
            keyframe = versions[version]["keyframe"]
            reference = codec.decompress(
                path, reference=None if keyframe else reference
            )
            assert reference.tobytes() == expected[version], (
                f"{backend} decode of version {version} differs"
            )

    return {
        "field": {
            "shape": list(STREAM_SHAPE),
            "tile_shape": list(STREAM_TILE),
            "snapshots": STREAM_SNAPSHOTS,
            "steps_between": STREAM_STEPS_BETWEEN,
            "target_psnr": STREAM_TARGET_PSNR,
            "keyframe_interval": STREAM_KEYFRAME_INTERVAL,
        },
        "trad": {
            "error_bound": trad_eb,
            "bytes": int(trad_bytes),
            "worst_psnr": round(trad_worst, 3),
        },
        "stream": {
            "bytes": int(chain_bytes),
            "worst_psnr": round(stream_worst, 3),
            "error_bounds": [
                round(r.error_bound, 8) for r in stream.records
            ],
            "keyframes": sum(1 for r in stream.records if r.keyframe),
            "temporal_tiles": sum(
                r.temporal_tiles for r in stream.records
            ),
            "spatial_tiles": sum(
                r.spatial_tiles for r in stream.records
            ),
        },
        "delta_vs_scratch": round(trad_bytes / chain_bytes, 4),
        "chain": {
            "depths": depths,
            "max_chain_depth": max(depths),
            "cold_read_ms": round(cold_chain_ms, 3),
            "warm_read_ms": round(warm_chain_ms, 3),
            "cold_keyframe_ms": round(cold_keyframe_ms, 3),
        },
        "backends_byte_identical": True,
    }


def test_snapshot_stream(report, tmp_path):
    """Temporal stream guardrails (CI snapshot-stream)."""
    perf = _measure_snapshot_stream(tmp_path)
    stream, trad, chain = perf["stream"], perf["trad"], perf["chain"]
    report(
        "snapshot_stream (8-snapshot wavefield, PSNR target "
        f"{STREAM_TARGET_PSNR} dB): from-scratch worst-case bound "
        f"{trad['error_bound']:.1e} -> {trad['bytes']} B, delta chain "
        f"{stream['bytes']} B -> gain {perf['delta_vs_scratch']}x; "
        f"{stream['temporal_tiles']} temporal / "
        f"{stream['spatial_tiles']} spatial tiles, "
        f"{stream['keyframes']} keyframes; chain depth "
        f"<= {chain['max_chain_depth']}, deepest read cold "
        f"{chain['cold_read_ms']} ms / warm {chain['warm_read_ms']} ms "
        f"(keyframe cold {chain['cold_keyframe_ms']} ms)"
    )
    _append_trajectory(
        {
            "date": time.strftime("%Y-%m-%d %H:%M:%S"),
            "modes": {"snapshot_stream": perf},
        }
    )
    # acceptance: the delta stream must spend >= 1.25x fewer total
    # bytes than per-snapshot-from-scratch at the same PSNR target...
    assert perf["delta_vs_scratch"] >= STREAM_MIN_DELTA_GAIN
    # ...with both arms actually meeting the target on every snapshot
    assert trad["worst_psnr"] >= STREAM_TARGET_PSNR - 1.0
    assert stream["worst_psnr"] >= STREAM_TARGET_PSNR - STREAM_PSNR_SLACK
    # deltas must really be in play, and random access must stay
    # bounded by the keyframe interval
    assert stream["temporal_tiles"] > 0
    assert stream["keyframes"] < STREAM_SNAPSHOTS
    assert chain["max_chain_depth"] <= STREAM_KEYFRAME_INTERVAL
    assert perf["backends_byte_identical"] is True


# -- serving (region-read latency) workload ------------------------------------

#: 16-tile halo field served over HTTP (512x512 f4, 128x128 tiles)
SERVE_SHAPE = (512, 512)
SERVE_TILE = (128, 128)
SERVE_EB = 0.25
SERVE_WINDOW = 160  # probe hyperslab edge (touches 2-4 tiles)
#: acceptance: warm-cache p50 must be >= 3x faster than cold-cache p50
SERVE_MIN_WARM_SPEEDUP = 3.0
SERVE_THREADS = 8


def _serve_field() -> np.ndarray:
    """16-tile variant of the heterogeneous halo field."""
    from repro.datasets.generators import (
        gaussian_random_field,
        lognormal_field,
    )

    shape = SERVE_SHAPE
    bg = gaussian_random_field(shape, slope=4.0, seed=17).astype(
        np.float64
    )
    hs = tuple(n // 4 for n in shape)
    halos = lognormal_field(hs, slope=2.0, seed=18, contrast=3.0)
    pad = tuple((n // 8, n - h - n // 8) for n, h in zip(shape, hs))
    return (bg + np.pad(0.5 * halos.astype(np.float64), pad)).astype(
        np.float32
    )


def _serve_slabs() -> list:
    """Deterministic probe windows over the halo field."""
    slabs = []
    for i in range(16):
        x0 = (i * 96) % (SERVE_SHAPE[0] - SERVE_WINDOW)
        y0 = (i * 53) % (SERVE_SHAPE[1] - SERVE_WINDOW)
        slabs.append(
            f"{x0}:{x0 + SERVE_WINDOW},{y0}:{y0 + SERVE_WINDOW}"
        )
    return slabs


def _measure_serving(tmp_path) -> dict:
    """QPS + p50/p99 region-read latency, cold vs warm tile cache."""
    from concurrent.futures import ThreadPoolExecutor

    from repro.service import (
        ArrayClient,
        ArrayServer,
        ArrayStore,
        TileLRUCache,
    )

    field = _serve_field()
    store = ArrayStore(
        str(tmp_path / "serve_store"),
        cache=TileLRUCache(byte_budget=64 << 20),
    )
    server = ArrayServer(store)
    server.serve_in_background()
    try:
        client = ArrayClient(server.url)
        client.put("halo", field, eb=SERVE_EB, tile=SERVE_TILE)
        slabs = _serve_slabs()

        def timed_read(c: ArrayClient, slab: str) -> float:
            start = time.perf_counter()
            c.read_region("halo", slab)
            return (time.perf_counter() - start) * 1e3

        # cold: every request decodes its tiles (cache cleared first)
        cold_ms = []
        for _ in range(3):
            for slab in slabs:
                store.cache.clear()
                cold_ms.append(timed_read(client, slab))

        # warm: the working set is fully cached
        for slab in slabs:
            client.read_region("halo", slab)
        warm_ms = [
            timed_read(client, slab)
            for _ in range(6)
            for slab in slabs
        ]

        # sustained concurrent throughput on the warm cache
        per_thread = 32

        def worker(seed: int) -> int:
            local = ArrayClient(server.url)
            order = np.random.default_rng(seed).permutation(len(slabs))
            done = 0
            for i in range(per_thread):
                local.read_region("halo", slabs[order[i % len(order)]])
                done += 1
            return done

        start = time.perf_counter()
        with ThreadPoolExecutor(max_workers=SERVE_THREADS) as pool:
            total = sum(pool.map(worker, range(SERVE_THREADS)))
        qps = total / (time.perf_counter() - start)
        stats = store.cache.stats()
    finally:
        server.shutdown()
        server.server_close()
        store.close()

    cold_p50 = float(np.percentile(cold_ms, 50))
    warm_p50 = float(np.percentile(warm_ms, 50))
    return {
        "field": {
            "shape": list(SERVE_SHAPE),
            "tile_shape": list(SERVE_TILE),
            "error_bound": SERVE_EB,
            "window": SERVE_WINDOW,
            "n_tiles": 16,
        },
        "requests": {
            "cold": len(cold_ms),
            "warm": len(warm_ms),
            "concurrent": int(total),
            "threads": SERVE_THREADS,
        },
        "cold_p50_ms": round(cold_p50, 3),
        "cold_p99_ms": round(float(np.percentile(cold_ms, 99)), 3),
        "warm_p50_ms": round(warm_p50, 3),
        "warm_p99_ms": round(float(np.percentile(warm_ms, 99)), 3),
        "warm_speedup_p50": round(cold_p50 / warm_p50, 3),
        "qps": round(qps, 1),
        "cache": stats.to_json(),
    }


# -- chaos workload ------------------------------------------------------------

CHAOS_SEED = 42
CHAOS_FAILURE_RATE = 0.35
CHAOS_REQUESTS = 60
#: acceptance: fraction of requests that must ultimately succeed
CHAOS_MIN_AVAILABILITY = 0.9
#: acceptance: integrity bytes per container payload byte
CHAOS_MAX_CHECKSUM_OVERHEAD = 0.01


def _checksum_overhead(data: np.ndarray, config) -> float:
    """Fractional container growth from the integrity checksums."""
    import io

    from repro.compressor.container import TiledReader, TiledWriter

    blob = TiledCompressor().compress(data, config).blob
    reader = TiledReader(blob)
    assert reader.checksum_state == "verified"
    plain = io.BytesIO()
    with TiledWriter(
        plain,
        {
            k: v
            for k, v in reader.header.items()
            if k not in ("checksums", "container_version")
        },
        version=reader.version,
        checksums=False,
    ) as writer:
        for t in reader.tiles:
            writer.add_tile(
                t.start, t.stop, reader.read_tile(t), config=t.config
            )
    without = len(plain.getvalue())
    return (len(blob) - without) / without


def _measure_chaos(tmp_path) -> dict:
    """Availability + retry overhead under an injected fault storm.

    The serving workload replayed against a server whose responses are
    dropped / truncated / delayed at ``CHAOS_FAILURE_RATE`` by a
    seeded :class:`FaultInjector`; the client retries with capped
    exponential backoff.  Every response the client accepts is
    compared byte-for-byte against ground truth read straight from the
    store — the recorded ``wrong_bytes_responses`` must be zero.
    """
    from repro.compressor.tiled_geometry import parse_region_text
    from repro.service import (
        ArrayClient,
        ArrayServer,
        ArrayStore,
        TileLRUCache,
    )
    from repro.service.client import RetryPolicy
    from repro.service.faults import FaultInjector

    field = _serve_field()
    config = CompressionConfig(
        error_bound=SERVE_EB, tile_shape=SERVE_TILE
    )
    store = ArrayStore(
        str(tmp_path / "chaos_store"),
        cache=TileLRUCache(byte_budget=64 << 20),
    )
    injector = FaultInjector(
        seed=CHAOS_SEED,
        http_failure_rate=CHAOS_FAILURE_RATE,
        delay_seconds=0.002,
    )
    server = ArrayServer(store, faults=injector)
    server.serve_in_background()
    try:
        # setup bypasses HTTP: the injector is armed from the start
        store.create("halo", field, config)
        slabs = _serve_slabs()
        truths = {
            slab: store.read_region(
                "halo", parse_region_text(slab)
            ).data
            for slab in slabs
        }
        client = ArrayClient(
            server.url,
            retry=RetryPolicy(
                max_attempts=8,
                base_delay=0.003,
                max_delay=0.05,
                seed=1,
            ),
        )
        served = failed = wrong = attempts = 0
        backoff_s = 0.0
        start = time.perf_counter()
        for i in range(CHAOS_REQUESTS):
            slab = slabs[i % len(slabs)]
            try:
                roi = client.read_region("halo", slab)
            except Exception:
                failed += 1
                continue
            served += 1
            attempts += client.last_retry_stats["attempts"]
            backoff_s += client.last_retry_stats["slept"]
            if not np.array_equal(roi, truths[slab]):
                wrong += 1
        elapsed = time.perf_counter() - start
        injected = injector.fired("http")
    finally:
        server.shutdown()
        server.server_close()
        store.close()

    return {
        "field": {
            "shape": list(SERVE_SHAPE),
            "tile_shape": list(SERVE_TILE),
            "error_bound": SERVE_EB,
        },
        "faults": {
            "seed": CHAOS_SEED,
            "http_failure_rate": CHAOS_FAILURE_RATE,
            "injected": int(injected),
        },
        "requests": CHAOS_REQUESTS,
        "served": served,
        "failed": failed,
        "availability": round(served / CHAOS_REQUESTS, 4),
        "wrong_bytes_responses": wrong,
        "retry": {
            "mean_attempts": round(attempts / max(1, served), 3),
            "total_backoff_s": round(backoff_s, 3),
        },
        "elapsed_s": round(elapsed, 3),
        "checksum_overhead": round(
            _checksum_overhead(field, config), 6
        ),
    }


def test_chaos(report, tmp_path):
    chaos = _measure_chaos(tmp_path)
    report(
        "Chaos serving (seeded fault storm, "
        f"{int(100 * chaos['faults']['http_failure_rate'])}% of "
        f"responses faulted, {chaos['faults']['injected']} injected): "
        f"availability {chaos['availability']}, "
        f"{chaos['wrong_bytes_responses']} wrong-bytes responses, "
        f"mean {chaos['retry']['mean_attempts']} attempts/request, "
        f"{chaos['retry']['total_backoff_s']} s backoff, "
        f"checksum overhead {chaos['checksum_overhead']}"
    )
    _append_trajectory(
        {
            "date": time.strftime("%Y-%m-%d %H:%M:%S"),
            "modes": {"chaos": chaos},
        }
    )
    # the detected-or-correct guarantee at the wire: a faulted
    # response may fail the request, never falsify it
    assert chaos["wrong_bytes_responses"] == 0
    assert chaos["availability"] >= CHAOS_MIN_AVAILABILITY, (
        "retries must keep availability above "
        f"{CHAOS_MIN_AVAILABILITY} under the fault storm "
        f"(got {chaos['availability']})"
    )
    assert chaos["faults"]["injected"] > 0  # the storm actually blew
    assert (
        chaos["checksum_overhead"] <= CHAOS_MAX_CHECKSUM_OVERHEAD
    ), (
        "integrity checksums must cost <= "
        f"{CHAOS_MAX_CHECKSUM_OVERHEAD:.0%} of container bytes "
        f"(got {chaos['checksum_overhead']:.4%})"
    )


# -- parallel-scaling workload -------------------------------------------------

#: 1M-point field for the backend-scaling sweep (small enough for CI,
#: large enough that per-batch transport overhead is amortized)
PAR_SHAPE = (64, 128, 128)
PAR_TILE = (8, 128, 128)  # 8 tiles of ~1 MB: clean 4-way fan-out
PAR_WORKERS = (1, 2, 4)
#: acceptance: process-backend compress at 4 workers vs serial
PAR_MIN_SPEEDUP = 1.5
#: cores needed for the speedup assertion to be physically meaningful
PAR_MIN_CORES = 4


def _par_field() -> np.ndarray:
    rng = np.random.default_rng(2)
    return np.cumsum(rng.standard_normal(PAR_SHAPE), axis=-1)


def _measure_parallel_scaling() -> dict:
    """Compress/decompress MB/s per backend at workers={1,2,4}.

    Every (backend, workers) run must produce the *same bytes* as the
    serial baseline — the backends are an execution detail, not a
    format knob — and the process backend's pool is warmed up before
    timing so the persistent-pool steady state is what gets recorded.
    """
    from repro.compressor import TiledCompressor
    from repro.compressor.executor import usable_cores

    data = _par_field()
    mb = data.nbytes / 1e6
    config = CompressionConfig(
        predictor="lorenzo",
        error_bound=ERROR_BOUND,
        lossless="zstd_like",
        tile_shape=PAR_TILE,
    )
    # warm-up slab spanning 4 tiles: a (backend, workers) warm-up pass
    # must put a task on *every* pool worker, or the cold-start (numpy
    # + repro imports in each worker process) lands inside the timing
    warmup = data[: 4 * PAR_TILE[0]]
    # one full-size serial pass first: page in the field and JIT-warm
    # the NumPy kernels so the first timed combination is not penalized
    TiledCompressor().compress(data, config)

    serial_blob = None
    backends: dict = {}
    for backend in ("serial", "thread", "process"):
        backends[backend] = {}
        for workers in PAR_WORKERS:
            tc = TiledCompressor(workers=workers, backend=backend)
            tc.compress(warmup, config)  # spin up pools outside timing
            start = time.perf_counter()
            result = tc.compress(data, config)
            compress_s = time.perf_counter() - start
            if serial_blob is None:
                serial_blob = result.blob
            assert result.blob == serial_blob, (
                f"{backend} w{workers} produced different bytes"
            )
            start = time.perf_counter()
            recon = tc.decompress(result.blob)
            decompress_s = time.perf_counter() - start
            assert np.max(np.abs(recon - data)) <= ERROR_BOUND * (1 + 1e-9)
            backends[backend][f"w{workers}"] = {
                "compress_s": round(compress_s, 4),
                "compress_mb_s": round(mb / compress_s, 2),
                "decompress_s": round(decompress_s, 4),
                "decompress_mb_s": round(mb / decompress_s, 2),
            }

    serial_rate = backends["serial"]["w1"]["compress_mb_s"]
    process_rate = backends["process"]["w4"]["compress_mb_s"]
    return {
        "field": {
            "shape": list(PAR_SHAPE),
            "tile_shape": list(PAR_TILE),
            "error_bound": ERROR_BOUND,
        },
        "cores": usable_cores(),
        "byte_identical": True,
        "backends": backends,
        "process_w4_speedup_vs_serial": round(
            process_rate / serial_rate, 3
        ),
    }


def test_parallel_scaling(report):
    """Backend-scaling sweep; asserts process speedup on >= 4 cores."""
    scaling = _measure_parallel_scaling()
    rows = [
        (
            f"{backend} w{workers}",
            m["compress_s"],
            m["compress_mb_s"],
            m["decompress_s"],
            m["decompress_mb_s"],
        )
        for backend, per_w in scaling["backends"].items()
        for workers in PAR_WORKERS
        for m in [per_w[f"w{workers}"]]
    ]
    report(
        format_table(
            ["backend", "comp s", "comp MB/s", "decomp s", "decomp MB/s"],
            rows,
            float_spec=".2f",
            title=(
                "Parallel scaling (1M-point field, 8 tiles, "
                f"{scaling['cores']} core(s) available): process w4 "
                f"speedup {scaling['process_w4_speedup_vs_serial']}x "
                "vs serial"
            ),
        )
    )
    _append_trajectory(
        {
            "date": time.strftime("%Y-%m-%d %H:%M:%S"),
            "modes": {"parallel_scaling": scaling},
        }
    )
    if scaling["cores"] >= PAR_MIN_CORES:
        assert (
            scaling["process_w4_speedup_vs_serial"] >= PAR_MIN_SPEEDUP
        ), (
            "process backend at 4 workers must compress at least "
            f"{PAR_MIN_SPEEDUP}x faster than serial "
            f"(got {scaling['process_w4_speedup_vs_serial']}x on "
            f"{scaling['cores']} cores)"
        )
    else:
        # fewer cores than workers: 4 process workers oversubscribed
        # onto 1-3 cores pay IPC overhead the acceptance criterion
        # never targeted, so only record (CI perf-smoke asserts on a
        # >= 4-core runner)
        report(
            f"parallel_scaling: {scaling['cores']} core(s) available "
            "- recorded throughput without asserting the "
            f"{PAR_MIN_CORES}-worker speedup (CI perf-smoke runs the "
            f"assertion on >= {PAR_MIN_CORES} cores)"
        )


def _measure(data: np.ndarray, chunk_size, workers) -> dict:
    config = CompressionConfig(
        predictor="lorenzo",
        error_bound=ERROR_BOUND,
        lossless="zstd_like",
        chunk_size=chunk_size,
    )
    sz = SZCompressor(workers=workers)
    start = time.perf_counter()
    result = sz.compress(data, config)
    compress_s = time.perf_counter() - start
    start = time.perf_counter()
    recon = sz.decompress(result.blob)
    decompress_s = time.perf_counter() - start
    assert np.max(np.abs(recon - data)) <= ERROR_BOUND * (1 + 1e-9)
    mb = data.nbytes / 1e6
    return {
        "compress_s": round(compress_s, 4),
        "decompress_s": round(decompress_s, 4),
        "compress_mb_s": round(mb / compress_s, 2),
        "decompress_mb_s": round(mb / decompress_s, 2),
        "ratio": round(result.ratio, 4),
    }


def _append_trajectory(entry: dict) -> None:
    trajectory = {"workload": {}, "runs": []}
    if os.path.exists(TRAJECTORY_PATH):
        with open(TRAJECTORY_PATH, "r", encoding="utf-8") as fh:
            trajectory = json.load(fh)
    trajectory["workload"] = {
        "shape": list(SHAPE),
        "error_bound": ERROR_BOUND,
        "predictor": "lorenzo",
        "lossless": "zstd_like",
    }
    trajectory.setdefault("runs", []).append(entry)
    with open(TRAJECTORY_PATH, "w", encoding="utf-8") as fh:
        json.dump(trajectory, fh, indent=2, sort_keys=True)
        fh.write("\n")


def _measure_tiled(data: np.ndarray, tmp_path) -> dict:
    """Tiled streaming: MB/s + subprocess peak RSS + 1% region decode."""
    from repro.cli import parse_region

    field_path = str(tmp_path / "field.npy")
    np.save(field_path, data)
    tiled_out = str(tmp_path / "tiled.rqsz")
    flat_out = str(tmp_path / "flat.rqsz")

    tiled = _run_rss_child(field_path, tiled_out, "tiled")
    flat = _run_rss_child(field_path, flat_out, "flat")

    mb = data.nbytes / 1e6
    tc = TiledCompressor(workers=4)
    start = time.perf_counter()
    recon = tc.decompress(tiled_out)
    decompress_s = time.perf_counter() - start
    assert np.max(np.abs(recon - data)) <= ERROR_BOUND * (1 + 1e-9)
    del recon

    start = time.perf_counter()
    roi = tc.decompress_region(tiled_out, parse_region(ROI))
    region_s = time.perf_counter() - start
    n_tiles = 1
    for n, t in zip(SHAPE, TILE_SHAPE):
        n_tiles *= (n + t - 1) // t

    return {
        "compress_s": round(tiled["compress_s"], 4),
        "decompress_s": round(decompress_s, 4),
        "compress_mb_s": round(mb / tiled["compress_s"], 2),
        "decompress_mb_s": round(mb / decompress_s, 2),
        "ratio": round(data.nbytes / tiled["compressed_bytes"], 4),
        "peak_rss_mb": round(tiled["peak_rss_mb"], 1),
        "flat_peak_rss_mb": round(flat["peak_rss_mb"], 1),
        "region": {
            "slab": ROI,
            "points": int(roi.size),
            "point_fraction": round(roi.size / data.size, 4),
            "decode_s": round(region_s, 4),
            "tiles_decoded": tc.last_tiles_decoded,
            "n_tiles": n_tiles,
        },
    }


def test_throughput(report, tmp_path):
    data = _field()
    measurements = {
        label: _measure(data, **params) for label, params in MODES.items()
    }
    measurements["v4_tiled_w4"] = tiled = _measure_tiled(data, tmp_path)
    measurements["v5_adaptive"] = adaptive = _measure_adaptive()
    rows = [
        (
            label,
            m["compress_s"],
            m["compress_mb_s"],
            m["decompress_s"],
            m["decompress_mb_s"],
            m["ratio"],
        )
        for label, m in measurements.items()
    ]
    measurements["serve_latency"] = serving = _measure_serving(tmp_path)
    report(
        format_table(
            [
                "mode",
                "comp s",
                "comp MB/s",
                "decomp s",
                "decomp MB/s",
                "ratio",
            ],
            rows,
            float_spec=".2f",
            title=(
                "Codec throughput (4M-point 3-D field, abs 1e-2, "
                "lorenzo + zstd_like).\nSeed baseline: 14.4 s compress / "
                "3.5 s decompress (~2.3 MB/s)."
            ),
        )
    )
    _append_trajectory(
        {
            "date": time.strftime("%Y-%m-%d %H:%M:%S"),
            "modes": measurements,
        }
    )

    # ratio parity between layouts, and both directions clearly faster
    # than the seed baseline (generous margins for noisy CI machines)
    v2, v3 = measurements["v2_single"], measurements["v3_chunked"]
    assert v3["ratio"] >= 0.95 * v2["ratio"]
    assert v3["compress_mb_s"] >= 5 * 2.3
    assert v3["decompress_mb_s"] >= 5 * 9.6  # seed: 33.5 MB / 3.5 s

    # tiled streaming: near ratio parity (per-tile headers cost a
    # little), bounded memory, and ROI decode touching few tiles
    assert tiled["ratio"] >= 0.90 * v2["ratio"]
    region = tiled["region"]
    assert region["tiles_decoded"] < region["n_tiles"] / 2
    assert region["point_fraction"] <= 0.011
    # the streamed path must stay well under the materialize-everything
    # footprint (whole array + codes + payloads in the flat pipeline)
    assert tiled["peak_rss_mb"] < 0.75 * tiled["flat_peak_rss_mb"]

    # adaptive per-tile configuration (acceptance criterion): on the
    # heterogeneous halo field the v5 container must spend >= 5% fewer
    # bytes than the best uniform v4 config at equal measured PSNR
    report(
        "v5_adaptive equal-PSNR comparison "
        f"(PSNR {adaptive['psnr']} dB): adaptive {adaptive['bytes']} B "
        f"vs best uniform "
        f"{min(m['bytes'] for m in adaptive['uniform_equal_psnr'].values())}"
        f" B -> gain {adaptive['equal_psnr_gain']}x "
        f"(predictors {adaptive['predictor_counts']})"
    )
    assert adaptive["equal_psnr_gain"] >= ADAPTIVE_MIN_GAIN

    # serving (acceptance criterion): on the 16-tile halo workload the
    # decoded-tile cache must make warm region reads >= 3x faster at
    # the median than cold ones, with real cache traffic behind it
    report(
        "serve_latency (16-tile halo field over HTTP): "
        f"cold p50 {serving['cold_p50_ms']} ms / "
        f"p99 {serving['cold_p99_ms']} ms, "
        f"warm p50 {serving['warm_p50_ms']} ms / "
        f"p99 {serving['warm_p99_ms']} ms "
        f"(speedup {serving['warm_speedup_p50']}x), "
        f"{serving['qps']} QPS with {SERVE_THREADS} threads, "
        f"cache hit rate {serving['cache']['hit_rate']}"
    )
    assert serving["warm_speedup_p50"] >= SERVE_MIN_WARM_SPEEDUP
    assert serving["cache"]["hits"] > 0
    assert serving["qps"] > 0
