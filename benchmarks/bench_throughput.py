"""Codec throughput benchmark, tracked across PRs.

Measures end-to-end compress/decompress MB/s on a 4M-point 3-D field
(abs 1e-2, lorenzo + zstd_like) for the single-stream (v2) and chunked
(v3) container layouts, prints the table through the ``report`` fixture
and appends the numbers to ``BENCH_throughput.json`` at the repo root so
the performance trajectory is visible across PRs.

Reference points on this workload: the seed implementation ran at
14.4 s compress / 3.5 s decompress (~2.3 MB/s); the chunked vectorized
pipeline targets >= 5x both ways with the ratio within 5%.
"""

from __future__ import annotations

import json
import os
import time

import numpy as np

from repro.compressor import CompressionConfig, SZCompressor
from repro.utils.tables import format_table

SHAPE = (128, 128, 256)  # 4M points
ERROR_BOUND = 1e-2
TRAJECTORY_PATH = os.path.join(
    os.path.dirname(os.path.dirname(os.path.abspath(__file__))),
    "BENCH_throughput.json",
)

MODES = {
    "v2_single": dict(chunk_size=None, workers=None),
    "v3_chunked": dict(chunk_size=1 << 20, workers=None),
    "v3_chunked_w4": dict(chunk_size=1 << 20, workers=4),
}


def _field() -> np.ndarray:
    """Smooth random-walk field: representative quantization statistics."""
    rng = np.random.default_rng(0)
    data = np.cumsum(rng.standard_normal(SHAPE), axis=-1)
    return data + np.cumsum(rng.standard_normal(SHAPE), axis=0)


def _measure(data: np.ndarray, chunk_size, workers) -> dict:
    config = CompressionConfig(
        predictor="lorenzo",
        error_bound=ERROR_BOUND,
        lossless="zstd_like",
        chunk_size=chunk_size,
    )
    sz = SZCompressor(workers=workers)
    start = time.perf_counter()
    result = sz.compress(data, config)
    compress_s = time.perf_counter() - start
    start = time.perf_counter()
    recon = sz.decompress(result.blob)
    decompress_s = time.perf_counter() - start
    assert np.max(np.abs(recon - data)) <= ERROR_BOUND * (1 + 1e-9)
    mb = data.nbytes / 1e6
    return {
        "compress_s": round(compress_s, 4),
        "decompress_s": round(decompress_s, 4),
        "compress_mb_s": round(mb / compress_s, 2),
        "decompress_mb_s": round(mb / decompress_s, 2),
        "ratio": round(result.ratio, 4),
    }


def _append_trajectory(entry: dict) -> None:
    trajectory = {"workload": {}, "runs": []}
    if os.path.exists(TRAJECTORY_PATH):
        with open(TRAJECTORY_PATH, "r", encoding="utf-8") as fh:
            trajectory = json.load(fh)
    trajectory["workload"] = {
        "shape": list(SHAPE),
        "error_bound": ERROR_BOUND,
        "predictor": "lorenzo",
        "lossless": "zstd_like",
    }
    trajectory.setdefault("runs", []).append(entry)
    with open(TRAJECTORY_PATH, "w", encoding="utf-8") as fh:
        json.dump(trajectory, fh, indent=2, sort_keys=True)
        fh.write("\n")


def test_throughput(report):
    data = _field()
    measurements = {
        label: _measure(data, **params) for label, params in MODES.items()
    }
    rows = [
        (
            label,
            m["compress_s"],
            m["compress_mb_s"],
            m["decompress_s"],
            m["decompress_mb_s"],
            m["ratio"],
        )
        for label, m in measurements.items()
    ]
    report(
        format_table(
            [
                "mode",
                "comp s",
                "comp MB/s",
                "decomp s",
                "decomp MB/s",
                "ratio",
            ],
            rows,
            float_spec=".2f",
            title=(
                "Codec throughput (4M-point 3-D field, abs 1e-2, "
                "lorenzo + zstd_like).\nSeed baseline: 14.4 s compress / "
                "3.5 s decompress (~2.3 MB/s)."
            ),
        )
    )
    _append_trajectory(
        {
            "date": time.strftime("%Y-%m-%d %H:%M:%S"),
            "modes": measurements,
        }
    )

    # ratio parity between layouts, and both directions clearly faster
    # than the seed baseline (generous margins for noisy CI machines)
    v2, v3 = measurements["v2_single"], measurements["v3_chunked"]
    assert v3["ratio"] >= 0.95 * v2["ratio"]
    assert v3["compress_mb_s"] >= 5 * 2.3
    assert v3["decompress_mb_s"] >= 5 * 9.6  # seed: 33.5 MB / 3.5 s
