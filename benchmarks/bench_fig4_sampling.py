"""Figure 4: sampling error vs sampling rate for the three predictors.

Regenerates the error bars of the paper's Fig. 4: the relative deviation
of the sampled prediction-error standard deviation from the full one,
over sampling rates from 0.1% to 100%, with min/max over repeated
trials.  The paper picks 1% as the accuracy/overhead sweet spot.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.compressor.predictors import make_predictor
from repro.core.sampling import sample_prediction_errors
from repro.datasets import load_field
from repro.utils.tables import format_table

RATES = (0.001, 0.005, 0.01, 0.05, 0.2, 1.0)
TRIALS = 5
PREDICTORS = ("lorenzo", "interpolation", "regression")


@pytest.fixture(scope="module")
def sweep():
    data = load_field("Nyx", "velocity_z", size_scale=0.6)
    vrange = float(data.max() - data.min())
    rows = []
    for predictor in PREDICTORS:
        pred = make_predictor(predictor)
        full_std = float(
            np.std(pred.prediction_errors(data.astype(np.float64)))
        )
        for rate in RATES:
            errs = []
            for trial in range(TRIALS):
                sample = sample_prediction_errors(
                    data, predictor, rate=rate, seed=trial
                )
                errs.append(
                    abs(float(np.std(sample.errors)) - full_std) / vrange
                )
            rows.append(
                (
                    predictor,
                    rate,
                    float(np.mean(errs)),
                    float(np.min(errs)),
                    float(np.max(errs)),
                )
            )
    return rows


def test_fig4(benchmark, sweep, report):
    report(
        format_table(
            ["predictor", "rate", "mean err", "min err", "max err"],
            sweep,
            float_spec=".5f",
            title=(
                "Figure 4: sampled-vs-full prediction-error std deviation "
                "(relative to value range), Nyx velocity_z.\nExpected "
                "shape: error falls with rate; ~1e-3 at the paper's 1% "
                "rate; predictors behave similarly."
            ),
        )
    )
    data = load_field("Nyx", "velocity_z", size_scale=0.4)
    benchmark(
        lambda: sample_prediction_errors(data, "lorenzo", rate=0.01)
    )

    # error decreases with rate for every predictor
    for predictor in PREDICTORS:
        errs = [r[2] for r in sweep if r[0] == predictor]
        assert errs[0] >= errs[-1]
    # the paper's 1% operating point achieves sub-0.5% sample error
    one_percent = [r[2] for r in sweep if r[1] == 0.01]
    assert max(one_percent) < 0.02
