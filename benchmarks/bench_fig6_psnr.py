"""Figure 6: PSNR estimation — uniform-only vs refined error distribution.

The paper's Fig. 6 plots measured PSNR against the estimate from the
uniform error model (Eq. 10) and from the refined distribution (Eq. 11)
on the Nyx dark-matter density field, for both the interpolation and the
Lorenzo predictor.  The refined model matters under high error bounds,
where the true error concentrates far below the uniform eb^2/3.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.analysis.metrics import psnr
from repro.compressor import CompressionConfig, SZCompressor
from repro.core.accuracy import estimation_accuracy
from repro.core.model import RatioQualityModel
from repro.datasets import load_field
from repro.utils.tables import format_table

FRACTIONS = (1e-4, 1e-3, 1e-2, 3e-2, 0.1, 0.3)
PREDICTORS = ("interpolation", "lorenzo")


@pytest.fixture(scope="module")
def sweep():
    data = load_field("Nyx", "dark_matter_density", size_scale=0.5)
    vrange = float(data.max() - data.min())
    sz = SZCompressor()
    rows = {}
    for predictor in PREDICTORS:
        model = RatioQualityModel(predictor=predictor).fit(data)
        series = []
        for frac in FRACTIONS:
            eb = vrange * frac
            cfg = CompressionConfig(predictor=predictor, error_bound=eb)
            _, recon = sz.roundtrip(data, cfg)
            series.append(
                (
                    frac,
                    model.estimate(eb, refined_distribution=False).psnr,
                    model.estimate(eb, refined_distribution=True).psnr,
                    psnr(data, recon),
                )
            )
        rows[predictor] = series
    return rows


def test_fig6(benchmark, sweep, report):
    for predictor, series in sweep.items():
        report(
            format_table(
                ["eb/range", "uniform est (Eq10)", "refined est", "measured"],
                series,
                float_spec=".2f",
                title=(
                    f"Figure 6 ({predictor}): PSNR estimation on Nyx "
                    "dark-matter density.\nExpected shape: both estimates "
                    "agree at low eb; only the refined model tracks the "
                    "measurement at high eb."
                ),
            )
        )
        measured = np.array([s[3] for s in series])
        uniform = np.array([s[1] for s in series])
        refined = np.array([s[2] for s in series])
        acc_uniform = estimation_accuracy(measured, uniform)
        acc_refined = estimation_accuracy(measured, refined)
        report(
            f"{predictor}: uniform accuracy {acc_uniform:.4f}, refined "
            f"accuracy {acc_refined:.4f} (paper avg 97.3%)"
        )
        assert acc_refined > 0.9
        assert acc_refined >= acc_uniform - 1e-9
        # at the highest bound the refined estimate must be closer
        assert abs(refined[-1] - measured[-1]) <= abs(
            uniform[-1] - measured[-1]
        )

    data = load_field("Nyx", "dark_matter_density", size_scale=0.3)
    model = RatioQualityModel().fit(data)
    vrange = float(data.max() - data.min())
    benchmark(lambda: model.estimate(vrange * 0.1).psnr)
