"""Figure 5: estimated vs measured bit-rate across the error-bound sweep.

Two series, as in the paper: Huffman-encoder-only bit-rate and the
overall (Huffman + lossless) bit-rate, each with the model estimate next
to the measurement, swept from the high-rate regime down past the Eq. 3
validity edge into anchor-interpolation territory.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.compressor import CompressionConfig, SZCompressor
from repro.core.accuracy import estimation_accuracy
from repro.core.model import RatioQualityModel
from repro.datasets import load_field
from repro.utils.tables import format_table

FRACTIONS = (3e-5, 1e-4, 3e-4, 1e-3, 3e-3, 1e-2, 3e-2, 0.1, 0.3)


@pytest.fixture(scope="module")
def sweep():
    data = load_field("Miranda", "vx", size_scale=0.6)
    vrange = float(data.max() - data.min())
    sz = SZCompressor()
    model = RatioQualityModel(predictor="lorenzo").fit(data)
    rows = []
    for frac in FRACTIONS:
        eb = vrange * frac
        est = model.estimate(eb)
        huff_only = sz.compress(
            data, CompressionConfig(error_bound=eb, lossless=None)
        )
        overall = sz.compress(
            data, CompressionConfig(error_bound=eb, lossless="zstd_like")
        )
        rows.append(
            (
                frac,
                est.huffman_bitrate,
                huff_only.huffman_bit_rate,
                est.bitrate,
                overall.bit_rate,
                est.p0,
            )
        )
    return rows


def test_fig5(benchmark, sweep, report):
    report(
        format_table(
            [
                "eb/range",
                "Huff est",
                "Huff meas",
                "overall est",
                "overall meas",
                "p0 est",
            ],
            sweep,
            float_spec=".3f",
            title=(
                "Figure 5: bit-rate estimation vs measurement (Miranda "
                "vx, Lorenzo).\nExpected shape: estimates track "
                "measurements above ~2 bits; Huffman floor at 1 bit."
            ),
        )
    )
    huff_est = np.array([r[1] for r in sweep])
    huff_meas = np.array([r[2] for r in sweep])
    all_est = np.array([r[3] for r in sweep])
    all_meas = np.array([r[4] for r in sweep])
    acc_huff = estimation_accuracy(huff_meas, huff_est)
    acc_all = estimation_accuracy(all_meas, all_est)
    report(
        f"Huffman bit-rate accuracy (Eq.20): {acc_huff:.4f} "
        f"(paper avg 94.8%)\noverall bit-rate accuracy: {acc_all:.4f} "
        f"(paper avg 93.5%)"
    )
    assert acc_huff > 0.9
    # the overall rate inherits the lossless-stage deviation at extreme
    # bounds (dual-quant codes are spatially correlated, so the real
    # dictionary coder beats the independence-based RLE model there)
    assert acc_all > 0.8

    data = load_field("Miranda", "vx", size_scale=0.4)
    model = RatioQualityModel().fit(data)
    vrange = float(data.max() - data.min())
    benchmark(lambda: model.estimate(vrange * 1e-3))
