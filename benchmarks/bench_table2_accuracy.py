"""Table II: per-field estimation accuracy across the full suite.

For every one of the 17 evaluated fields this regenerates the paper's
columns: sampling error (1% rate), Eq. 20 estimation error of the
Huffman-only bit-rate, of the lossless-stage gain (RLE approximation),
of the combined bit-rate, and of PSNR and SSIM.  SSIM is omitted for
the 1-D and 4-D fields, matching the dashes in the paper's table.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.analysis.metrics import psnr, ssim_global
from repro.compressor import CompressionConfig, SZCompressor
from repro.compressor.predictors import make_predictor
from repro.core.accuracy import estimation_error
from repro.core.model import RatioQualityModel
from repro.core.sampling import sample_prediction_errors
from repro.datasets import TABLE2_FIELDS, get_dataset
from repro.utils.tables import format_table

FRACTIONS = (1e-4, 1e-3, 1e-2, 5e-2)
SCALES = {1: 0.1, 2: 0.5, 3: 0.5, 4: 0.6}
SKIP_SSIM_DIMS = (1, 4)


def _evaluate_field(dataset: str, field: str) -> tuple:
    spec = get_dataset(dataset)
    data = spec.field(field).load(SCALES[spec.dims])
    vrange = float(data.max() - data.min())
    sz = SZCompressor()
    model = RatioQualityModel(predictor="lorenzo").fit(data)

    pred = make_predictor("lorenzo")
    full_std = float(np.std(pred.prediction_errors(data.astype(np.float64))))
    sample = sample_prediction_errors(data, "lorenzo", rate=0.01)
    sample_err = (
        abs(float(np.std(sample.errors)) - full_std) / vrange
        if vrange
        else 0.0
    )

    huff_est, huff_meas = [], []
    ll_est, ll_meas = [], []
    total_est, total_meas = [], []
    psnr_est, psnr_meas = [], []
    ssim_est, ssim_meas = [], []
    for frac in FRACTIONS:
        eb = vrange * frac
        est = model.estimate(eb)
        result = sz.compress(
            data, CompressionConfig(error_bound=eb, lossless="zstd_like")
        )
        recon = sz.decompress(result.blob)
        huff_est.append(est.huffman_bitrate)
        huff_meas.append(result.huffman_bit_rate)
        ll_est.append(est.lossless_ratio)
        ll_meas.append(result.sizes.huffman_only / max(result.sizes.codes, 1))
        total_est.append(est.bitrate)
        total_meas.append(result.bit_rate)
        psnr_est.append(est.psnr)
        psnr_meas.append(psnr(data, recon))
        if spec.dims not in SKIP_SSIM_DIMS:
            ssim_est.append(est.ssim)
            ssim_meas.append(ssim_global(data, recon))

    row = (
        dataset,
        field,
        f"{100 * sample_err:.2f}%",
        f"{100 * estimation_error(huff_meas, huff_est):.2f}%",
        f"{100 * estimation_error(ll_meas, ll_est):.2f}%",
        f"{100 * estimation_error(total_meas, total_est):.2f}%",
        f"{100 * estimation_error(psnr_meas, psnr_est):.2f}%",
        (
            f"{100 * estimation_error(ssim_meas, ssim_est):.2f}%"
            if ssim_est
            else "-"
        ),
    )
    numbers = (
        sample_err,
        estimation_error(huff_meas, huff_est),
        estimation_error(total_meas, total_est),
        estimation_error(psnr_meas, psnr_est),
    )
    return row, numbers


@pytest.fixture(scope="module")
def table():
    rows, numbers = [], []
    for dataset, field in TABLE2_FIELDS:
        row, nums = _evaluate_field(dataset, field)
        rows.append(row)
        numbers.append(nums)
    return rows, numbers


def test_table2(benchmark, table, report):
    rows, numbers = table
    arr = np.array(numbers)
    report(
        format_table(
            [
                "Dataset",
                "Field",
                "SampleErr",
                "HuffErr",
                "LosslessErr",
                "Huff+LLErr",
                "PSNRErr",
                "SSIMErr",
            ],
            rows,
            title=(
                "Table II: estimation errors per field (Eq. 20).\n"
                "Paper averages: sample 0.12%, Huffman 5.16%, lossless "
                "6.21%, Huff+LL 6.53%, PSNR 2.72%, SSIM 5.59%."
            ),
        )
    )
    report(
        "Averages: sample {:.2f}%  huffman {:.2f}%  total {:.2f}%  "
        "psnr {:.2f}%".format(*(100 * arr.mean(axis=0)))
    )
    # reproduce the headline claims in shape:
    assert arr[:, 0].mean() < 0.02  # sampling error well below 2%
    assert arr[:, 1].mean() < 0.15  # Huffman bit-rate error ~5-15%
    assert arr[:, 2].mean() < 0.15  # combined bit-rate error
    assert arr[:, 3].mean() < 0.08  # PSNR error lowest of all

    data = get_dataset("CESM").field("TS").load(0.3)
    model = RatioQualityModel().fit(data)
    vrange = float(data.max() - data.min())
    benchmark(lambda: model.estimate(vrange * 1e-3))
