"""Figure 3: Huffman vs optional-lossless compression ratio separation.

The paper's observation driving the encoder model: the Huffman stage
carries the compression ratio until it saturates near 1 bit/symbol; only
then does the optional lossless stage (Zstandard/Gzip there, zstd_like /
gzip_like here) contribute, and a zero-run RLE captures almost all of
that contribution.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.compressor import CompressionConfig, SZCompressor
from repro.datasets import load_field
from repro.utils.tables import format_table

FRACTIONS = (1e-4, 1e-3, 1e-2, 5e-2, 0.15, 0.4, 0.8)


@pytest.fixture(scope="module")
def sweep():
    data = load_field("Hurricane", "U", size_scale=0.6)
    vrange = float(data.max() - data.min())
    sz = SZCompressor()
    rows = []
    for frac in FRACTIONS:
        eb = vrange * frac
        sizes = {}
        for lossless in (None, "zstd_like", "gzip_like", "rle"):
            cfg = CompressionConfig(error_bound=eb, lossless=lossless)
            result = sz.compress(data, cfg)
            key = lossless or "huffman_only"
            sizes[key] = result.sizes.codes
            p0 = result.p0
        n = data.size
        rows.append(
            (
                frac,
                8.0 * sizes["huffman_only"] / n,
                8.0 * sizes["zstd_like"] / n,
                8.0 * sizes["gzip_like"] / n,
                8.0 * sizes["rle"] / n,
                p0,
            )
        )
    return rows


def test_fig3(benchmark, sweep, report):
    report(
        format_table(
            [
                "eb/range",
                "Huffman b/pt",
                "+zstd_like",
                "+gzip_like",
                "+rle",
                "p0",
            ],
            sweep,
            float_spec=".3f",
            title=(
                "Figure 3: encoder-stage bit-rates vs error bound "
                "(Hurricane U).\nExpected shape: lossless stages only "
                "improve on Huffman once it nears 1 bit/pt (p0 -> 1), "
                "and RLE captures most of that gain."
            ),
        )
    )
    # the modelled quantity: Huffman-only encoding of the codes
    data = load_field("Hurricane", "U", size_scale=0.3)
    sz = SZCompressor()
    cfg = CompressionConfig(
        error_bound=float(data.max() - data.min()) * 1e-3, lossless=None
    )
    benchmark(lambda: sz.compress(data, cfg))

    # shape assertions: Huffman-only curve is flat once saturated
    huffman = np.array([row[1] for row in sweep])
    zstd = np.array([row[2] for row in sweep])
    assert huffman[-1] <= 1.4  # saturates near 1 bit/pt
    assert zstd[-1] < huffman[-1]  # lossless bites at the end
    assert zstd[0] == pytest.approx(huffman[0], rel=0.05)  # not earlier
