"""Figure 8: FFT/power-spectrum degradation estimation (Nyx temperature).

The paper's data-specific analysis: predicted vs measured FFT quality
degradation under a high absolute error bound, showing the refined error
distribution (Eq. 11 / the exact dual-quant residual here) beating the
uniform-only assumption of prior work (Jin et al. HPDC'20).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.analysis.spectrum import (
    predicted_spectrum_relative_error,
    spectrum_relative_error,
)
from repro.compressor import CompressionConfig, SZCompressor
from repro.core.model import RatioQualityModel
from repro.datasets import load_field
from repro.utils.tables import format_table

FRACTIONS = (1e-3, 3e-3, 1e-2, 3e-2, 0.1, 0.25)


@pytest.fixture(scope="module")
def sweep():
    data = load_field("Nyx", "temperature", size_scale=0.5)
    vrange = float(data.max() - data.min())
    sz = SZCompressor()
    model = RatioQualityModel(predictor="lorenzo").fit(data)
    rows = []
    for frac in FRACTIONS:
        eb = vrange * frac
        _, recon = sz.roundtrip(data, CompressionConfig(error_bound=eb))
        measured = spectrum_relative_error(
            data.astype(np.float64), recon.astype(np.float64)
        )
        var_uniform = model.error_variance(eb, refined=False)
        var_refined = model.error_variance(eb, refined=True)
        rows.append(
            (
                frac,
                predicted_spectrum_relative_error(data, var_uniform),
                predicted_spectrum_relative_error(data, var_refined),
                measured,
            )
        )
    return rows


def test_fig8(benchmark, sweep, report):
    report(
        format_table(
            ["eb/range", "uniform est", "refined est", "measured"],
            sweep,
            float_spec=".5f",
            title=(
                "Figure 8: mean relative P(k) degradation, Nyx "
                "temperature.\nExpected shape: refined estimate tracks "
                "the measurement at high bounds where the uniform "
                "assumption overshoots."
            ),
        )
    )
    uniform = np.array([r[1] for r in sweep])
    refined = np.array([r[2] for r in sweep])
    measured = np.array([r[3] for r in sweep])
    # at the highest bounds the refined model must be the closer one
    for i in (-1, -2):
        assert abs(np.log10(refined[i] / measured[i])) <= abs(
            np.log10(uniform[i] / measured[i])
        )
    # and within a factor ~3 of the measurement overall
    ratio = refined / measured
    assert np.all((ratio > 0.3) & (ratio < 3.5))

    data = load_field("Nyx", "temperature", size_scale=0.3)
    model = RatioQualityModel().fit(data)
    vrange = float(data.max() - data.min())
    benchmark(
        lambda: predicted_spectrum_relative_error(
            data, model.error_variance(vrange * 0.05)
        )
    )
