"""Ablation: dual-quantization Lorenzo vs classic sequential Lorenzo.

DESIGN.md §3 substitutes cuSZ-style dual quantization for SZ's classic
reconstructed-value Lorenzo so the predictor is vectorizable.  This
ablation quantifies what the substitution changes: compression ratio and
zero-code probability on a representative field, at matched bounds.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.compressor.encoders.huffman import HuffmanEncoder
from repro.compressor.predictors.lorenzo import (
    ClassicLorenzoPredictor,
    LorenzoPredictor,
)
from repro.datasets import load_field
from repro.utils.tables import format_table

FRACTIONS = (1e-3, 1e-2, 5e-2)


@pytest.fixture(scope="module")
def comparison():
    # classic Lorenzo is a Python loop, so keep the field small
    data = load_field("Hurricane", "TC", size_scale=0.22).astype(np.float64)
    vrange = float(data.max() - data.min())
    enc = HuffmanEncoder()
    rows = []
    for frac in FRACTIONS:
        eb = vrange * frac
        row = [frac]
        for predictor in (LorenzoPredictor(), ClassicLorenzoPredictor()):
            out = predictor.decompose(data, eb, 32768)
            bits = enc.encoded_size_bits(out.codes) / out.codes.size
            p0 = float(np.mean(out.codes == 0))
            row.extend([bits, p0])
        rows.append(tuple(row))
    return rows


def test_ablation_lorenzo(benchmark, comparison, report):
    report(
        format_table(
            [
                "eb/range",
                "dualquant b/pt",
                "dualquant p0",
                "classic b/pt",
                "classic p0",
            ],
            comparison,
            float_spec=".3f",
            title=(
                "Ablation: dual-quant vs classic Lorenzo (Hurricane TC)."
                "\nExpected: closely matching code statistics; the "
                "dual-quant path adds bounded lattice-rounding entropy."
            ),
        )
    )
    for row in comparison:
        _, dq_bits, dq_p0, cl_bits, cl_p0 = row
        assert abs(dq_bits - cl_bits) < 1.0  # within one bit/point
        assert abs(dq_p0 - cl_p0) < 0.15

    data = load_field("Hurricane", "TC", size_scale=0.3).astype(np.float64)
    eb = float(data.max() - data.min()) * 1e-3
    predictor = LorenzoPredictor()
    benchmark(lambda: predictor.decompose(data, eb, 32768))
