"""Ablation: Eq. 9 bin-transfer correction on/off (interpolation).

The correction transfers histogram mass between neighbouring bins to
mimic reconstructed-value prediction at high error bounds (p0 >= 0.8,
C2 = 0.1 for interpolation).  This ablation measures its effect on the
bit-rate estimation error against the real compressor.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.compressor import CompressionConfig, SZCompressor
from repro.core.accuracy import estimation_error
from repro.core.encoder_model import combined_bitrate
from repro.core.histogram import build_code_histogram
from repro.core.sampling import sample_prediction_errors
from repro.datasets import load_field
from repro.utils.tables import format_table

FRACTIONS = (3e-2, 0.08, 0.15, 0.3)


@pytest.fixture(scope="module")
def comparison():
    data = load_field("CESM", "TROP_Z", size_scale=0.5)
    vrange = float(data.max() - data.min())
    sz = SZCompressor()
    sample = sample_prediction_errors(data, "interpolation", rate=0.01)
    rows = []
    errs = {True: [], False: []}
    meas_list = []
    for frac in FRACTIONS:
        eb = vrange * frac
        cfg = CompressionConfig(
            predictor="interpolation", error_bound=eb, lossless=None
        )
        measured = sz.compress(data, cfg).huffman_bit_rate
        meas_list.append(measured)
        estimates = {}
        for corrected in (True, False):
            hist = build_code_histogram(
                sample.errors,
                eb,
                predictor="interpolation",
                correction=corrected,
            )
            estimates[corrected] = combined_bitrate(hist)[1]
            errs[corrected].append(estimates[corrected])
        rows.append((frac, estimates[True], estimates[False], measured))
    return rows, errs, meas_list


def test_ablation_bintransfer(benchmark, comparison, report):
    rows, errs, measured = comparison
    report(
        format_table(
            ["eb/range", "est corrected", "est raw", "measured b/pt"],
            rows,
            float_spec=".3f",
            title=(
                "Ablation: Eq. 9 bin-transfer on/off, interpolation "
                "predictor (CESM TROP_Z, high-bound regime).\nExpected: "
                "the corrected histogram tracks the measured Huffman "
                "rate more closely where p0 >= 0.8."
            ),
        )
    )
    err_on = estimation_error(measured, errs[True])
    err_off = estimation_error(measured, errs[False])
    report(
        f"Eq.20 estimation error: corrected {100 * err_on:.2f}% vs "
        f"uncorrected {100 * err_off:.2f}%"
    )
    # the correction must not hurt, and generally helps, in its regime
    assert err_on <= err_off + 0.02

    data = load_field("CESM", "TROP_Z", size_scale=0.3)
    sample = sample_prediction_errors(data, "interpolation", rate=0.01)
    eb = float(data.max() - data.min()) * 0.1
    benchmark(
        lambda: build_code_histogram(
            sample.errors, eb, predictor="interpolation"
        )
    )
