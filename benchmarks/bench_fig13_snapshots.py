"""Figure 13: per-snapshot bit-rate & PSNR — model vs offline worst-case.

The streaming comparison behind the data-management experiment: a
sequence of RTM snapshots is compressed (a) with the traditional offline
worst-case bound chosen once for all snapshots and (b) in-situ with the
model targeting PSNR >= 56 dB per snapshot.  The paper's shape: the
offline bound wildly overshoots the quality target on most snapshots
(wasting bits), while the model's bit-rate stays low and the PSNR hugs
the target.

Every codec here is built through :class:`~repro.factory.CodecFactory`,
so the same harness exercises the flat pipeline and — via a factory
variant with ``temporal`` set — the v6 snapshot-stream delta mode, whose
per-snapshot rate/PSNR rides along as a third arm in the table.
"""

from __future__ import annotations

from dataclasses import replace

import numpy as np
import pytest

from repro.analysis.metrics import psnr
from repro.datasets import wave_snapshots
from repro.factory import CodecFactory
from repro.usecases.baselines import offline_worst_case_error_bound
from repro.usecases.insitu import SnapshotPipeline
from repro.utils.tables import format_table

TARGET_PSNR = 56.0


@pytest.fixture(scope="module")
def experiment():
    snaps = wave_snapshots(
        (40, 40, 40), n_snapshots=8, steps_between=8, seed=29
    )
    vranges = [float(np.ptp(s)) for s in snaps]
    candidates = [
        max(vranges) * 10 ** (-e) for e in (1.0, 2.0, 3.0, 4.0, 5.0)
    ]
    factory = CodecFactory()
    offline = offline_worst_case_error_bound(
        list(snaps), factory.config(candidates[0]), candidates, TARGET_PSNR
    )
    sz = factory.compressor()
    rows = []
    pipeline = SnapshotPipeline(target_psnr=TARGET_PSNR, factory=factory)
    stream = SnapshotPipeline(
        target_psnr=TARGET_PSNR,
        factory=replace(factory, temporal=True, keyframe_interval=4),
    )
    for i, snap in enumerate(snaps):
        result = sz.compress(
            snap, factory.config(offline.chosen_error_bound)
        )
        recon = sz.decompress(result.blob)
        trad_rate, trad_psnr = result.bit_rate, psnr(snap, recon)
        record = pipeline.process(snap)
        srec = stream.process(snap)
        rows.append(
            (
                i,
                trad_rate,
                trad_psnr,
                record.bit_rate,
                record.psnr,
                srec.bit_rate,
                srec.psnr,
                "KF" if srec.keyframe else "d",
            )
        )
    return rows, stream.records


def test_fig13(benchmark, experiment, report):
    rows, stream_records = experiment
    report(
        format_table(
            [
                "snapshot",
                "offline b/pt",
                "offline PSNR",
                "model b/pt",
                "model PSNR",
                "stream b/pt",
                "stream PSNR",
                "kind",
            ],
            rows,
            float_spec=".2f",
            title=(
                "Figure 13: per-snapshot rate/quality, offline "
                f"worst-case vs in-situ model (target {TARGET_PSNR} dB)."
                "\nExpected shape: offline PSNR far above target on "
                "most snapshots; model PSNR hugs the target at a "
                "consistently lower bit-rate.  The stream arm is the "
                "same in-situ policy through the v6 temporal delta "
                "codec (KF=keyframe, d=delta)."
            ),
        )
    )
    trad_rate = np.array([r[1] for r in rows])
    trad_psnr = np.array([r[2] for r in rows])
    model_rate = np.array([r[3] for r in rows])
    model_psnr = np.array([r[4] for r in rows])
    stream_rate = np.array([r[5] for r in rows])
    stream_psnr = np.array([r[6] for r in rows])
    temporal_tiles = sum(r.temporal_tiles for r in stream_records)
    spatial_tiles = sum(r.spatial_tiles for r in stream_records)
    report(
        f"mean bits/pt: offline {trad_rate.mean():.3f} vs model "
        f"{model_rate.mean():.3f} vs stream {stream_rate.mean():.3f} | "
        f"PSNR overshoot: offline "
        f"{(trad_psnr - TARGET_PSNR).mean():+.1f} dB vs model "
        f"{(model_psnr - TARGET_PSNR).mean():+.1f} dB | stream tiles: "
        f"{temporal_tiles} temporal / {spatial_tiles} spatial"
    )
    # every snapshot meets the target under all three policies
    assert np.all(trad_psnr >= TARGET_PSNR - 1.0)
    assert np.all(model_psnr >= TARGET_PSNR - 2.0)
    assert np.all(stream_psnr >= TARGET_PSNR - 2.0)
    # the model spends fewer bits and overshoots less
    assert model_rate.mean() < trad_rate.mean()
    assert (model_psnr - TARGET_PSNR).mean() < (
        trad_psnr - TARGET_PSNR
    ).mean()
    # the stream arm also undercuts the offline bound, and its chain
    # actually interleaves deltas between keyframes
    assert stream_rate.mean() < trad_rate.mean()
    assert any(not r.keyframe for r in stream_records)

    snap = wave_snapshots((32, 32, 32), 3, steps_between=10, seed=31)[-1]
    pipe = SnapshotPipeline(
        target_psnr=TARGET_PSNR, factory=CodecFactory()
    )
    benchmark(lambda: pipe.process(snap))
