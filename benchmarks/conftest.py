"""Shared infrastructure for the paper-regeneration benchmarks.

Every benchmark module regenerates one table or figure of the paper and
prints its rows through the ``report`` fixture, which (a) bypasses
pytest's output capture so the tables always appear on the console and
(b) tees them to ``benchmarks/results/<name>.txt`` for EXPERIMENTS.md.
"""

from __future__ import annotations

import os

import pytest

RESULTS_DIR = os.path.join(os.path.dirname(__file__), "results")


@pytest.fixture
def report(request):
    """Print a report block uncaptured and persist it to results/."""
    os.makedirs(RESULTS_DIR, exist_ok=True)
    capman = request.config.pluginmanager.getplugin("capturemanager")
    module = request.module.__name__

    def _report(text: str, name: str | None = None) -> None:
        block = f"\n{text}\n"
        if capman is not None:
            with capman.global_and_fixture_disabled():
                print(block)
        else:
            print(block)
        path = os.path.join(RESULTS_DIR, f"{name or module}.txt")
        with open(path, "a", encoding="utf-8") as fh:
            fh.write(block)

    return _report


@pytest.fixture(scope="session", autouse=True)
def _fresh_results_dir():
    """Start each benchmark session with a clean results directory."""
    os.makedirs(RESULTS_DIR, exist_ok=True)
    for name in os.listdir(RESULTS_DIR):
        if name.endswith(".txt"):
            os.remove(os.path.join(RESULTS_DIR, name))
    yield
